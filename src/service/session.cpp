#include "service/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>
#include <utility>

#include "carbon/grids.hpp"
#include "machine/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "workload/trace.hpp"

namespace ga::service {

namespace {

using ga::io::JsonValue;

/// Service-layer instruments: process-wide request/error counters shared by
/// every session in the process (the per-session tallies that back the
/// `metrics` verb live on ServeSession itself).
struct ServeMetrics {
    ga::obs::Counter& requests;
    ga::obs::Counter& errors;
};

ServeMetrics& serve_metrics() {
    auto& registry = ga::obs::Registry::global();
    static ServeMetrics metrics{
        registry.counter_handle("serve.requests"),
        registry.counter_handle("serve.errors"),
    };
    return metrics;
}

/// Hex rendering of the 64-bit snapshot checksum for the checkpoint
/// response (fixed 16 digits, lower-case).
std::string checksum_hex(std::uint64_t value) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
        value >>= 4;
    }
    return out;
}

JsonValue object() { return JsonValue{JsonValue::Object{}}; }

}  // namespace

// ------------------------------------------------------------ construction

ServeSession::ServeSession(ga::io::ScenarioFile scenario)
    : rng_(ga::util::Rng(scenario.workload.seed).split(0xA110C8)) {
    init_config(std::move(scenario));
    clusters_.reserve(cluster_cfgs_.size());
    for (const auto& cfg : cluster_cfgs_) {
        ClusterSessionState cluster;
        cluster.name = cfg.entry.node.name;
        cluster.capacity_cores = cfg.total_cores();
        cluster.free_cores = cluster.capacity_cores;
        clusters_.push_back(std::move(cluster));
    }
    std::vector<std::pair<std::string, ga::acct::AccountantSpec>> currencies;
    if (options_.currency_budgets.empty()) {
        const ga::acct::AccountantSpec pricing_spec =
            options_.accountant_spec.has_value()
                ? *options_.accountant_spec
                : ga::acct::to_spec(options_.pricing);
        currencies.emplace_back(std::string(ga::acct::Ledger::kDefaultCurrency),
                                pricing_spec);
    } else {
        for (const auto& cb : options_.currency_budgets) {
            currencies.emplace_back(cb.currency, cb.accountant);
        }
    }
    std::sort(currencies.begin(), currencies.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [currency, spec] : currencies) {
        ledger_.define_currency(currency, spec);
        currency_pricers_.emplace_back(
            currency, ga::acct::AccountantRegistry::global().make(spec));
    }
}

ServeSession::ServeSession(ga::io::ScenarioFile scenario,
                           const SessionState& state)
    : ServeSession(std::move(scenario)) {
    if (state.config_fingerprint != fingerprint_) {
        throw ga::util::RuntimeError(
            "snapshot: configuration fingerprint mismatch — the snapshot was "
            "taken under a different scenario configuration than the one "
            "being served");
    }
    if (state.clusters.size() != clusters_.size()) {
        throw ga::util::RuntimeError(
            "snapshot: cluster count mismatch against the configuration");
    }
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        if (state.clusters[c].name != clusters_[c].name ||
            state.clusters[c].capacity_cores != clusters_[c].capacity_cores) {
            throw ga::util::RuntimeError(
                "snapshot: cluster '" + state.clusters[c].name +
                "' does not match the configured deployment");
        }
    }
    ledger_.import_state(state.ledger);
    clock_ = state.clock_s;
    next_seq_ = state.next_seq;
    rng_ = ga::util::Rng::from_state(state.rng);
    jobs_submitted_ = state.jobs_submitted;
    jobs_rejected_ = state.jobs_rejected;
    primary_spent_ = state.primary_spent;
    clusters_ = state.clusters;
}

void ServeSession::init_config(ga::io::ScenarioFile scenario) {
    generate_users_ = std::max<std::size_t>(1, scenario.workload.users);

    const auto points = scenario.grid.expand();
    GA_REQUIRE(!points.empty(), "session: scenario grid expands to nothing");
    grid_points_ = points.size();
    options_ = points.front().options;

    // The fingerprint is the canonical scenario document reduced to what
    // the session actually serves: the workload knobs and the single
    // resolved grid point (base options, no axes).
    ga::io::ScenarioFile effective;
    effective.name = scenario.name;
    effective.workload = scenario.workload;
    effective.grid.base = options_;
    fingerprint_ = ga::io::write_json(ga::io::scenario_to_json(effective),
                                      /*indent=*/0);

    cluster_cfgs_ = ga::sim::default_clusters();
    for (auto& cfg : cluster_cfgs_) {
        // nodes == 0 means "one node per user" (personal desktops); the
        // batch simulator resolves it against the trace, we resolve it
        // against the scenario's configured user count.
        if (cfg.nodes == 0) {
            cfg.nodes = static_cast<int>(
                std::min<std::size_t>(generate_users_, 100'000));
        }
    }

    predictor_ = std::make_shared<ga::workload::CrossPlatformPredictor>(
        ga::machine::simulation_machines());
    predictor_index_.reserve(cluster_cfgs_.size());
    for (const auto& cfg : cluster_cfgs_) {
        predictor_index_.push_back(
            predictor_->machine_index(cfg.entry.node.name));
    }

    std::map<std::string, ga::carbon::IntensityTrace> traces;
    if (options_.regional_grids) {
        for (const auto& cfg : cluster_cfgs_) {
            if (cfg.entry.grid_region.empty()) continue;
            traces.emplace(cfg.entry.node.name,
                           ga::carbon::synthesize(
                               ga::carbon::region(cfg.entry.grid_region),
                               /*days=*/30, options_.grid_seed));
        }
    }
    cba_ = std::make_unique<ga::acct::CarbonBasedAccounting>(traces);

    const ga::acct::AccountantSpec pricing_spec =
        options_.accountant_spec.has_value()
            ? *options_.accountant_spec
            : ga::acct::to_spec(options_.pricing);
    pricer_ = ga::acct::AccountantRegistry::global().make(pricing_spec);
    if (!traces.empty()) {
        if (auto bound = pricer_->with_grid(traces)) pricer_ = std::move(bound);
    }

    ga::sim::PolicySpec policy_spec =
        options_.policy_spec.has_value()
            ? *options_.policy_spec
            : ga::sim::to_spec(options_.policy, options_.mixed_threshold);
    if (policy_spec.params.find("index") == policy_spec.params.end()) {
        for (std::size_t c = 0; c < cluster_cfgs_.size(); ++c) {
            if (cluster_cfgs_[c].entry.node.name == policy_spec.name) {
                policy_spec.params.emplace("index", static_cast<double>(c));
            }
        }
    }
    routing_ = ga::sim::PolicyRegistry::global().make(policy_spec);
    fill_grid_intensity_ = routing_->uses_grid_intensity();
    fill_grid_forecast_ =
        fill_grid_intensity_ && routing_->uses_grid_forecast();
}

// ------------------------------------------------------------- scheduling

std::uint64_t ServeSession::advance_to(double t) {
    std::uint64_t completed = 0;
    for (;;) {
        // Earliest finishing running job across clusters, ties by seq —
        // the deterministic completion order the snapshot preserves.
        std::size_t best_cluster = clusters_.size();
        for (std::size_t c = 0; c < clusters_.size(); ++c) {
            if (clusters_[c].running.empty()) continue;
            const auto& head = clusters_[c].running.front();
            if (head.finish_s > t) continue;
            if (best_cluster == clusters_.size() ||
                head.finish_s < clusters_[best_cluster].running.front().finish_s ||
                (head.finish_s ==
                     clusters_[best_cluster].running.front().finish_s &&
                 head.seq < clusters_[best_cluster].running.front().seq)) {
                best_cluster = c;
            }
        }
        if (best_cluster == clusters_.size()) break;

        ClusterSessionState& cluster = clusters_[best_cluster];
        const auto done = cluster.running.front();
        cluster.running.erase(cluster.running.begin());
        cluster.free_cores += done.cores;
        ++cluster.completed;
        ++completed;

        // Strict FIFO: start queued jobs from the front while they fit.
        while (!cluster.queue.empty() &&
               cluster.queue.front().cores <= cluster.free_cores) {
            const auto next = cluster.queue.front();
            cluster.queue.erase(cluster.queue.begin());
            cluster.free_cores -= next.cores;
            ++cluster.started;
            ClusterSessionState::RunningJob run;
            run.seq = next.seq;
            run.user = next.user;
            run.cores = next.cores;
            run.finish_s = done.finish_s + next.runtime_s;
            const auto pos = std::lower_bound(
                cluster.running.begin(), cluster.running.end(), run,
                [](const ClusterSessionState::RunningJob& a,
                   const ClusterSessionState::RunningJob& b) {
                    return a.finish_s != b.finish_s ? a.finish_s < b.finish_s
                                                   : a.seq < b.seq;
                });
            cluster.running.insert(pos, std::move(run));
        }
    }
    clock_ = std::max(clock_, t);
    return completed;
}

ServeSession::Routed ServeSession::route(const JobSpec& job,
                                         double priced_at) const {
    Routed routed;
    const std::size_t n = cluster_cfgs_.size();
    const auto scaling = predictor_->predict(job.counters);
    routed.choices.resize(n);
    routed.runtime_s.resize(n);
    routed.power_w.resize(n);
    std::vector<ga::sim::ClusterStatus> statuses(n);
    for (std::size_t c = 0; c < n; ++c) {
        const auto& cfg = cluster_cfgs_[c];
        const auto& scale = scaling[predictor_index_[c]];
        const double runtime = job.runtime_ic_s * scale.runtime_factor;
        const double power = job.power_ic_w * scale.power_factor;
        routed.runtime_s[c] = runtime;
        routed.power_w[c] = power;

        // Backlog estimate: queued core-seconds spread over the whole
        // cluster (a coarse wait proxy; the batch simulator uses the same
        // shape of estimate).
        double backlog_core_s = 0.0;
        for (const auto& queued : clusters_[c].queue) {
            backlog_core_s += queued.runtime_s * queued.cores;
        }
        const double queue_wait_s =
            clusters_[c].capacity_cores > 0
                ? backlog_core_s / clusters_[c].capacity_cores
                : 0.0;

        ga::acct::JobUsage usage;
        usage.duration_s = runtime;
        usage.energy_j = runtime * power;
        usage.cores = job.cores;
        usage.priced_at_s = priced_at;

        auto& choice = routed.choices[c];
        choice.machine_index = c;
        choice.feasible = job.cores <= clusters_[c].capacity_cores;
        choice.runtime_s = runtime;
        choice.energy_j = usage.energy_j;
        choice.cost = pricer_->charge(usage, cfg.entry);
        choice.queue_wait_s = queue_wait_s;

        auto& status = statuses[c];
        status.name = cfg.entry.node.name;
        status.capacity_cores = clusters_[c].capacity_cores;
        status.free_cores = clusters_[c].free_cores;
        status.queue_depth = clusters_[c].queue.size();
        status.queue_wait_s = queue_wait_s;
        if (fill_grid_intensity_) {
            status.grid_intensity_g_per_kwh =
                cba_->intensity_at(cfg.entry, clock_);
            if (fill_grid_forecast_) {
                status.grid_forecast_g_per_kwh =
                    cba_->intensity_at(cfg.entry, clock_ + 3600.0);
            }
        }
    }

    ga::sim::SchedulingContext ctx;
    ctx.now_s = clock_;
    ctx.budget_total = options_.budget;
    ctx.budget_remaining = options_.budget > 0.0
                               ? options_.budget - primary_spent_
                               : std::numeric_limits<double>::infinity();
    ctx.jobs_submitted = static_cast<std::size_t>(jobs_submitted_) + 1;
    ctx.pricing = options_.pricing;
    ctx.clusters = std::span<const ga::sim::ClusterStatus>(statuses);
    routed.chosen = routing_->choose(ctx, routed.choices);
    if (routed.chosen.has_value() &&
        !routed.choices[*routed.chosen].feasible) {
        routed.chosen.reset();
    }
    return routed;
}

JsonValue ServeSession::submit_one(const JobSpec& job) {
    JsonValue out = object();
    out.set("user", JsonValue(job.user));

    advance_to(job.submit_s);
    const Routed routed = route(job, job.submit_s);

    const auto reject = [&](std::string_view reason) {
        ++jobs_rejected_;
        out.set("status", JsonValue("rejected"));
        out.set("reason", JsonValue(reason));
        return out;
    };

    if (!routed.chosen.has_value()) {
        return reject("infeasible");
    }
    const std::size_t c = *routed.chosen;
    const double cost = routed.choices[c].cost;

    if (options_.budget > 0.0 && cost > options_.budget - primary_spent_) {
        return reject("budget");
    }

    if (ledger_.has_account(job.user)) {
        ga::acct::JobUsage usage;
        usage.duration_s = routed.runtime_s[c];
        usage.energy_j = routed.runtime_s[c] * routed.power_w[c];
        usage.cores = job.cores;
        usage.priced_at_s = job.submit_s;
        const ga::acct::ChargeOutcome outcome =
            ledger_.charge(job.user, usage, cluster_cfgs_[c].entry);
        JsonValue costs = object();
        for (const auto& [currency, amount] : outcome.costs) {
            costs.set(currency, JsonValue(amount));
        }
        out.set("costs", std::move(costs));
        if (!outcome.admitted) {
            ++jobs_rejected_;
            out.set("status", JsonValue("rejected"));
            out.set("reason", JsonValue("refused"));
            out.set("refused_currency", JsonValue(outcome.refused_currency));
            return out;
        }
        JsonValue::Array transactions;
        transactions.reserve(outcome.transactions.size());
        for (const std::uint64_t id : outcome.transactions) {
            transactions.emplace_back(static_cast<double>(id));
        }
        out.set("transactions", JsonValue(std::move(transactions)));
    } else {
        // Accounting is opt-in per user: jobs from accountless users run
        // uncharged (the routing cost is still reported and still counts
        // against the primary budget gate above).
        out.set("uncharged", JsonValue(true));
    }

    primary_spent_ += cost;
    ++jobs_submitted_;
    const std::uint64_t seq = next_seq_++;
    ClusterSessionState& cluster = clusters_[c];
    out.set("seq", JsonValue(static_cast<double>(seq)));
    out.set("machine", JsonValue(cluster.name));
    out.set("cost", JsonValue(cost));
    out.set("runtime_s", JsonValue(routed.runtime_s[c]));

    if (cluster.queue.empty() && job.cores <= cluster.free_cores) {
        cluster.free_cores -= job.cores;
        ++cluster.started;
        ClusterSessionState::RunningJob run;
        run.seq = seq;
        run.user = job.user;
        run.cores = job.cores;
        run.finish_s = job.submit_s + routed.runtime_s[c];
        const auto pos = std::lower_bound(
            cluster.running.begin(), cluster.running.end(), run,
            [](const ClusterSessionState::RunningJob& a,
               const ClusterSessionState::RunningJob& b) {
                return a.finish_s != b.finish_s ? a.finish_s < b.finish_s
                                                : a.seq < b.seq;
            });
        out.set("status", JsonValue("running"));
        out.set("finish_s", JsonValue(run.finish_s));
        cluster.running.insert(pos, std::move(run));
    } else {
        ClusterSessionState::QueuedJob queued;
        queued.seq = seq;
        queued.user = job.user;
        queued.cores = job.cores;
        queued.runtime_s = routed.runtime_s[c];
        queued.submit_s = job.submit_s;
        cluster.queue.push_back(std::move(queued));
        out.set("status", JsonValue("queued"));
    }
    return out;
}

ServeSession::JobSpec ServeSession::generate_job(double submit_s) {
    // A lightweight arrival stream drawn from the trace generator's app
    // archetypes — not the batch GMM pipeline, but the same heavy-tailed
    // runtime and core-count mix, and fully snapshot-resumable because the
    // only state is the session RNG.
    JobSpec job;
    const auto profile = ga::workload::sample_app_profile(rng_);
    char user_name[32];
    std::snprintf(user_name, sizeof user_name, "u%lld",
                  static_cast<long long>(rng_.uniform_int(
                      0, static_cast<std::int64_t>(generate_users_) - 1)));
    job.user = user_name;
    job.cores = profile.cores;
    job.runtime_ic_s = rng_.lognormal(std::log(profile.runtime_median_s),
                                      profile.runtime_sigma);
    job.power_ic_w =
        profile.cores * (10.0 + 20.0 * profile.compute_intensity);
    job.counters.gips = 0.5 + 3.5 * profile.compute_intensity;
    job.counters.llc_mps = 4.0 - 3.5 * profile.compute_intensity;
    job.submit_s = submit_s;
    return job;
}

// --------------------------------------------------------------- handlers

JsonValue ServeSession::handle_create_account(const Request& r) {
    check_keys(r.body, {"user", "budget", "budgets"}, "create_account");
    const std::string& user = string_field(r.body, "user", "create_account");
    std::map<std::string, double> budgets;
    if (const JsonValue* budget = r.body.find("budget")) {
        if (r.body.find("budgets") != nullptr) {
            throw ProtocolError("bad_request",
                                "create_account: give 'budget' or 'budgets', "
                                "not both");
        }
        if (!budget->is_number()) {
            throw ProtocolError("bad_request",
                                "create_account: 'budget' must be a number");
        }
        budgets.emplace(std::string(ga::acct::Ledger::kDefaultCurrency),
                        budget->as_number());
    } else if (const JsonValue* map = r.body.find("budgets")) {
        if (!map->is_object()) {
            throw ProtocolError("bad_request",
                                "create_account: 'budgets' must be an object");
        }
        for (const auto& [currency, amount] : map->as_object()) {
            if (!amount.is_number()) {
                throw ProtocolError("bad_request",
                                    "create_account: budget for '" + currency +
                                        "' must be a number");
            }
            budgets.emplace(currency, amount.as_number());
        }
    } else {
        throw ProtocolError("bad_request",
                            "create_account: missing 'budget' or 'budgets'");
    }
    for (const auto& [currency, amount] : budgets) {
        if (!ledger_.has_currency(currency)) {
            throw ProtocolError("unknown_currency",
                                "create_account: currency '" + currency +
                                    "' is not defined in this session");
        }
        if (!(amount > 0.0)) {
            throw ProtocolError("bad_request",
                                "create_account: budget for '" + currency +
                                    "' must be positive");
        }
    }
    ledger_.create_account(user, budgets);
    JsonValue currencies{JsonValue::Array{}};
    for (const auto& [currency, amount] : budgets) {
        currencies.as_array().emplace_back(currency);
    }
    JsonValue result = object();
    result.set("user", JsonValue(user));
    result.set("currencies", std::move(currencies));
    return result;
}

JsonValue ServeSession::handle_submit_jobs(const Request& r) {
    check_keys(r.body, {"jobs", "generate"}, "submit_jobs");
    std::vector<JobSpec> jobs;
    if (const JsonValue* list = r.body.find("jobs")) {
        if (r.body.find("generate") != nullptr) {
            throw ProtocolError("bad_request",
                                "submit_jobs: give 'jobs' or 'generate', "
                                "not both");
        }
        if (!list->is_array()) {
            throw ProtocolError("bad_request",
                                "submit_jobs: 'jobs' must be an array");
        }
        jobs.reserve(list->as_array().size());
        for (const JsonValue& entry : list->as_array()) {
            if (!entry.is_object()) {
                throw ProtocolError("bad_request",
                                    "submit_jobs: each job must be an object");
            }
            check_keys(entry,
                       {"user", "cores", "runtime_ic_s", "power_ic_w", "gips",
                        "llc_mps", "submit_s"},
                       "submit_jobs.job");
            JobSpec job;
            job.user = string_field(entry, "user", "submit_jobs.job");
            job.cores = static_cast<int>(
                uint_field(entry, "cores", "submit_jobs.job"));
            job.runtime_ic_s =
                number_field(entry, "runtime_ic_s", "submit_jobs.job");
            job.power_ic_w =
                number_field(entry, "power_ic_w", "submit_jobs.job");
            job.counters.gips =
                number_field_or(entry, "gips", "submit_jobs.job", 1.0);
            job.counters.llc_mps =
                number_field_or(entry, "llc_mps", "submit_jobs.job", 1.0);
            job.submit_s =
                number_field_or(entry, "submit_s", "submit_jobs.job", clock_);
            jobs.push_back(std::move(job));
        }
    } else if (const JsonValue* generate = r.body.find("generate")) {
        if (!generate->is_object()) {
            throw ProtocolError("bad_request",
                                "submit_jobs: 'generate' must be an object");
        }
        check_keys(*generate, {"count", "start_s", "spacing_s"},
                   "submit_jobs.generate");
        const std::uint64_t count =
            uint_field(*generate, "count", "submit_jobs.generate");
        if (count == 0 || count > 1'000'000) {
            throw ProtocolError("bad_request",
                                "submit_jobs.generate: 'count' must be in "
                                "[1, 1000000]");
        }
        const double start = number_field_or(*generate, "start_s",
                                             "submit_jobs.generate", clock_);
        const double spacing = number_field_or(*generate, "spacing_s",
                                               "submit_jobs.generate", 1.0);
        if (!(spacing >= 0.0)) {
            throw ProtocolError("bad_request",
                                "submit_jobs.generate: 'spacing_s' must be "
                                "non-negative");
        }
        jobs.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
            jobs.push_back(
                generate_job(start + static_cast<double>(i) * spacing));
        }
    } else {
        throw ProtocolError("bad_request",
                            "submit_jobs: missing 'jobs' or 'generate'");
    }

    double last_submit = clock_;
    for (const JobSpec& job : jobs) {
        if (job.cores < 1) {
            throw ProtocolError("bad_request",
                                "submit_jobs: 'cores' must be at least 1");
        }
        if (!(job.runtime_ic_s > 0.0) || !(job.power_ic_w > 0.0)) {
            throw ProtocolError("bad_request",
                                "submit_jobs: runtime_ic_s and power_ic_w "
                                "must be positive");
        }
        if (job.submit_s < last_submit) {
            throw ProtocolError("bad_request",
                                "submit_jobs: submit times must be "
                                "non-decreasing and not precede the clock");
        }
        last_submit = job.submit_s;
    }

    JsonValue::Array outcomes;
    outcomes.reserve(jobs.size());
    for (const JobSpec& job : jobs) {
        outcomes.push_back(submit_one(job));
    }
    JsonValue result = object();
    result.set("jobs", JsonValue(std::move(outcomes)));
    result.set("clock_s", JsonValue(clock_));
    return result;
}

JsonValue ServeSession::handle_quote(const Request& r) {
    check_keys(r.body,
               {"user", "cores", "runtime_ic_s", "power_ic_w", "gips",
                "llc_mps", "priced_at_s"},
               "quote");
    JobSpec job;
    job.cores = static_cast<int>(uint_field(r.body, "cores", "quote"));
    job.runtime_ic_s = number_field(r.body, "runtime_ic_s", "quote");
    job.power_ic_w = number_field(r.body, "power_ic_w", "quote");
    job.counters.gips = number_field_or(r.body, "gips", "quote", 1.0);
    job.counters.llc_mps = number_field_or(r.body, "llc_mps", "quote", 1.0);
    if (job.cores < 1 || !(job.runtime_ic_s > 0.0) ||
        !(job.power_ic_w > 0.0)) {
        throw ProtocolError("bad_request",
                            "quote: cores, runtime_ic_s and power_ic_w must "
                            "be positive");
    }
    const double priced_at =
        number_field_or(r.body, "priced_at_s", "quote", clock_);

    const Routed routed = route(job, priced_at);
    JsonValue::Array machines;
    machines.reserve(routed.choices.size());
    for (std::size_t c = 0; c < routed.choices.size(); ++c) {
        JsonValue entry = object();
        entry.set("machine", JsonValue(clusters_[c].name));
        entry.set("feasible", JsonValue(routed.choices[c].feasible));
        entry.set("runtime_s", JsonValue(routed.choices[c].runtime_s));
        entry.set("energy_j", JsonValue(routed.choices[c].energy_j));
        entry.set("cost", JsonValue(routed.choices[c].cost));
        entry.set("queue_wait_s", JsonValue(routed.choices[c].queue_wait_s));
        machines.push_back(std::move(entry));
    }
    JsonValue result = object();
    result.set("machines", JsonValue(std::move(machines)));
    result.set("chosen", routed.chosen.has_value()
                             ? JsonValue(clusters_[*routed.chosen].name)
                             : JsonValue(nullptr));

    // With a user holding an account, also quote the chosen machine under
    // every currency the account holds (what `charge` would cost).
    if (const JsonValue* user = r.body.find("user")) {
        if (!user->is_string()) {
            throw ProtocolError("bad_request",
                                "quote: 'user' must be a string");
        }
        if (routed.chosen.has_value() &&
            ledger_.has_account(user->as_string())) {
            const std::size_t c = *routed.chosen;
            ga::acct::JobUsage usage;
            usage.duration_s = routed.runtime_s[c];
            usage.energy_j = routed.runtime_s[c] * routed.power_w[c];
            usage.cores = job.cores;
            usage.priced_at_s = priced_at;
            JsonValue costs = object();
            for (const std::string& currency :
                 ledger_.account_currencies(user->as_string())) {
                for (const auto& [name, accountant] : currency_pricers_) {
                    if (name == currency) {
                        costs.set(currency,
                                  JsonValue(accountant->charge(
                                      usage, cluster_cfgs_[c].entry)));
                        break;
                    }
                }
            }
            result.set("currency_costs", std::move(costs));
        }
    }
    return result;
}

JsonValue ServeSession::handle_charge(const Request& r) {
    check_keys(r.body,
               {"user", "machine", "duration_s", "energy_j", "cores", "gpus",
                "priced_at_s"},
               "charge");
    const std::string& user = string_field(r.body, "user", "charge");
    const std::string& machine = string_field(r.body, "machine", "charge");
    if (!ledger_.has_account(user)) {
        throw ProtocolError("unknown_user",
                            "charge: no account for user '" + user + "'");
    }
    const ga::sim::ClusterConfig* cfg = nullptr;
    for (const auto& candidate : cluster_cfgs_) {
        if (candidate.entry.node.name == machine) {
            cfg = &candidate;
            break;
        }
    }
    if (cfg == nullptr) {
        throw ProtocolError("unknown_machine",
                            "charge: no machine '" + machine +
                                "' in this deployment");
    }
    ga::acct::JobUsage usage;
    usage.duration_s = number_field(r.body, "duration_s", "charge");
    usage.energy_j = number_field(r.body, "energy_j", "charge");
    usage.cores = static_cast<int>(uint_field(r.body, "cores", "charge"));
    usage.gpus = static_cast<int>(r.body.find("gpus") != nullptr
                                      ? uint_field(r.body, "gpus", "charge")
                                      : 0);
    usage.priced_at_s =
        number_field_or(r.body, "priced_at_s", "charge", clock_);
    if (!(usage.duration_s >= 0.0) || !(usage.energy_j >= 0.0) ||
        usage.cores < 1) {
        throw ProtocolError("bad_request",
                            "charge: duration_s/energy_j must be "
                            "non-negative and cores at least 1");
    }

    const ga::acct::ChargeOutcome outcome =
        ledger_.charge(user, usage, cfg->entry);
    JsonValue costs = object();
    for (const auto& [currency, amount] : outcome.costs) {
        costs.set(currency, JsonValue(amount));
    }
    JsonValue result = object();
    result.set("admitted", JsonValue(outcome.admitted));
    result.set("costs", std::move(costs));
    if (outcome.admitted) {
        JsonValue::Array transactions;
        transactions.reserve(outcome.transactions.size());
        for (const std::uint64_t id : outcome.transactions) {
            transactions.emplace_back(static_cast<double>(id));
        }
        result.set("transactions", JsonValue(std::move(transactions)));
    } else {
        result.set("refused_currency", JsonValue(outcome.refused_currency));
    }
    return result;
}

JsonValue ServeSession::handle_refund(const Request& r) {
    check_keys(r.body, {"user", "transaction"}, "refund");
    const std::string& user = string_field(r.body, "user", "refund");
    const std::uint64_t transaction =
        uint_field(r.body, "transaction", "refund");
    if (!ledger_.has_account(user)) {
        throw ProtocolError("unknown_user",
                            "refund: no account for user '" + user + "'");
    }
    std::uint64_t refund_id = 0;
    try {
        refund_id = ledger_.refund(user, transaction);
    } catch (const ga::util::RuntimeError& e) {
        throw ProtocolError("refund_rejected", e.what());
    }
    JsonValue result = object();
    result.set("refund", JsonValue(static_cast<double>(refund_id)));
    return result;
}

JsonValue ServeSession::handle_balance(const Request& r) {
    check_keys(r.body, {"user"}, "balance");
    const std::string& user = string_field(r.body, "user", "balance");
    if (!ledger_.has_account(user)) {
        throw ProtocolError("unknown_user",
                            "balance: no account for user '" + user + "'");
    }
    JsonValue currencies = object();
    for (const std::string& currency : ledger_.account_currencies(user)) {
        const double spent = ledger_.spent(user, currency);
        const double remaining = ledger_.remaining(user, currency);
        JsonValue entry = object();
        entry.set("budget", JsonValue(spent + remaining));
        entry.set("spent", JsonValue(spent));
        entry.set("remaining", JsonValue(remaining));
        currencies.set(currency, std::move(entry));
    }
    JsonValue result = object();
    result.set("user", JsonValue(user));
    result.set("currencies", std::move(currencies));
    return result;
}

JsonValue ServeSession::handle_stats(const Request& r) {
    check_keys(r.body, {}, "stats");
    std::uint64_t running = 0;
    std::uint64_t queued = 0;
    std::uint64_t completed = 0;
    JsonValue::Array clusters;
    clusters.reserve(clusters_.size());
    for (const auto& cluster : clusters_) {
        running += cluster.running.size();
        queued += cluster.queue.size();
        completed += cluster.completed;
        JsonValue entry = object();
        entry.set("name", JsonValue(cluster.name));
        entry.set("capacity_cores", JsonValue(cluster.capacity_cores));
        entry.set("free_cores", JsonValue(cluster.free_cores));
        entry.set("running",
                  JsonValue(static_cast<double>(cluster.running.size())));
        entry.set("queued",
                  JsonValue(static_cast<double>(cluster.queue.size())));
        entry.set("started", JsonValue(static_cast<double>(cluster.started)));
        entry.set("completed",
                  JsonValue(static_cast<double>(cluster.completed)));
        clusters.push_back(std::move(entry));
    }
    JsonValue result = object();
    result.set("clock_s", JsonValue(clock_));
    result.set("jobs_submitted",
               JsonValue(static_cast<double>(jobs_submitted_)));
    result.set("jobs_rejected", JsonValue(static_cast<double>(jobs_rejected_)));
    result.set("jobs_running", JsonValue(static_cast<double>(running)));
    result.set("jobs_queued", JsonValue(static_cast<double>(queued)));
    result.set("jobs_completed", JsonValue(static_cast<double>(completed)));
    result.set("primary_spent", JsonValue(primary_spent_));
    result.set("transactions",
               JsonValue(static_cast<double>(ledger_.history().size())));
    result.set("clusters", JsonValue(std::move(clusters)));
    return result;
}

JsonValue ServeSession::handle_metrics(const Request& r) {
    check_keys(r.body, {}, "metrics");
    JsonValue result = object();
    // Per-session tallies of lines handled, including this request (it is
    // counted when its line enters handle_line).
    result.set("requests", JsonValue(static_cast<double>(requests_served_)));
    result.set("errors", JsonValue(static_cast<double>(request_errors_)));
    result.set("metrics_enabled", JsonValue(ga::obs::metrics_enabled()));
    // Process-wide registry snapshot; all-zero (but present) when metrics
    // collection is disabled.
    result.set("prometheus",
               JsonValue(ga::obs::Registry::global().render_prometheus()));
    return result;
}

JsonValue ServeSession::handle_advance(const Request& r) {
    check_keys(r.body, {"to_s"}, "advance");
    const double to = number_field(r.body, "to_s", "advance");
    if (to < clock_) {
        throw ProtocolError("bad_request",
                            "advance: 'to_s' precedes the logical clock");
    }
    const std::uint64_t completed = advance_to(to);
    JsonValue result = object();
    result.set("clock_s", JsonValue(clock_));
    result.set("completed", JsonValue(static_cast<double>(completed)));
    return result;
}

JsonValue ServeSession::handle_checkpoint(const Request& r) {
    check_keys(r.body, {"path"}, "checkpoint");
    const std::string& path = string_field(r.body, "path", "checkpoint");
    const SessionState state = export_state();
    const std::string bytes = encode_snapshot(state);
    write_snapshot_file(path, state);
    JsonValue result = object();
    result.set("path", JsonValue(path));
    result.set("bytes", JsonValue(static_cast<double>(bytes.size())));
    result.set("checksum",
               JsonValue(checksum_hex(snapshot_checksum(
                   std::string_view(bytes).substr(32)))));
    return result;
}

JsonValue ServeSession::handle_shutdown(const Request& r) {
    check_keys(r.body, {}, "shutdown");
    shutdown_ = true;
    JsonValue result = object();
    result.set("stopping", JsonValue(true));
    return result;
}

JsonValue ServeSession::dispatch(const Request& request) {
    if (request.type == "create_account") return handle_create_account(request);
    if (request.type == "submit_jobs") return handle_submit_jobs(request);
    if (request.type == "quote") return handle_quote(request);
    if (request.type == "charge") return handle_charge(request);
    if (request.type == "refund") return handle_refund(request);
    if (request.type == "balance") return handle_balance(request);
    if (request.type == "stats") return handle_stats(request);
    if (request.type == "metrics") return handle_metrics(request);
    if (request.type == "advance") return handle_advance(request);
    if (request.type == "checkpoint") return handle_checkpoint(request);
    if (request.type == "shutdown") return handle_shutdown(request);
    throw ProtocolError("unknown_type",
                        "unknown request type '" + request.type + "'");
}

std::string ServeSession::handle_line(std::string_view line) {
    ServeMetrics& metrics = serve_metrics();
    ++requests_served_;
    metrics.requests.inc();
    std::optional<std::uint64_t> id;
    try {
        Request request = parse_request(line);
        id = request.id;
        JsonValue result = dispatch(request);
        return render(ok_response(request.id, std::move(result)));
    } catch (const ProtocolError& e) {
        ++request_errors_;
        metrics.errors.inc();
        if (!id.has_value()) id = recover_request_id(line);
        return render(error_response(id, e.code(), e.what()));
    } catch (const ga::util::PreconditionError& e) {
        ++request_errors_;
        metrics.errors.inc();
        return render(error_response(id, "precondition", e.what()));
    } catch (const ga::util::RuntimeError& e) {
        ++request_errors_;
        metrics.errors.inc();
        return render(error_response(id, "state_error", e.what()));
    } catch (const std::exception& e) {
        ++request_errors_;
        metrics.errors.inc();
        return render(error_response(id, "internal", e.what()));
    }
}

SessionState ServeSession::export_state() const {
    SessionState state;
    state.config_fingerprint = fingerprint_;
    state.clock_s = clock_;
    state.next_seq = next_seq_;
    state.rng = rng_.state();
    state.jobs_submitted = jobs_submitted_;
    state.jobs_rejected = jobs_rejected_;
    state.primary_spent = primary_spent_;
    state.clusters = clusters_;
    state.ledger = ledger_.export_state();
    return state;
}

}  // namespace ga::service
