// The live ga-serve session: a scenario's configuration held in memory with
// a running Ledger and an incremental job-stream scheduler behind the line
// protocol (service/protocol.hpp).
//
// One `ServeSession` serves exactly one expanded grid point of a scenario
// file (the first, when the grid has several): the resolved routing policy,
// pricing accountant, primary budget, regional grids, and the default
// Table-5 deployment. Unlike the batch simulator — which replays a complete
// trace — the session ingests jobs incrementally, so its scheduler is the
// streaming counterpart with two documented divergences: queues are strict
// FIFO (no skip-ahead when a later small job would fit), and there is no
// one-running-job-per-user rule (a front-end, not a fairness study).
// Charging happens at submit time: admitted jobs are priced and debited
// when routed (priced_at = submit), completion only frees cores.
//
// Determinism contract: a session is a pure function of (scenario file,
// request sequence). The logical clock only moves through requests
// (submit_s / advance), never the wall clock; the only randomness is the
// snapshot-carried generate-path RNG. Replaying the same request lines
// against the same scenario therefore produces byte-identical response
// lines and snapshots — including across a checkpoint/restart split at any
// request boundary. The session is deliberately single-threaded (one
// request at a time; the daemon serializes transports onto it), so it adds
// no locks to the declared hierarchy; the Ledger still locks internally.
//
// Request types: create_account, submit_jobs, quote, charge, refund,
// balance, stats, metrics, advance, checkpoint, shutdown — schemas in the
// handler comments (session.cpp) and docs/ARCHITECTURE.md "Service layer".
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/accounting.hpp"
#include "core/allocation.hpp"
#include "io/scenario.hpp"
#include "service/protocol.hpp"
#include "service/snapshot.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ga::service {

class ServeSession {
public:
    /// Fresh session over the scenario's first expanded grid point.
    explicit ServeSession(ga::io::ScenarioFile scenario);

    /// Restored session: same scenario, state from a snapshot. Throws
    /// RuntimeError when the snapshot's configuration fingerprint or
    /// cluster layout does not match the scenario — replaying requests
    /// against a different configuration would silently diverge.
    ServeSession(ga::io::ScenarioFile scenario, const SessionState& state);

    ServeSession(const ServeSession&) = delete;
    ServeSession& operator=(const ServeSession&) = delete;

    /// Handles one request line and returns the response line (without the
    /// trailing newline). Never throws: every failure becomes a structured
    /// error response. Deterministic in (construction state, lines so far).
    [[nodiscard]] std::string handle_line(std::string_view line);

    /// True once a shutdown request was acknowledged; the transport loop
    /// should stop reading.
    [[nodiscard]] bool shutdown_requested() const noexcept {
        return shutdown_;
    }

    /// The complete durable state (ledger exported under its own lock).
    [[nodiscard]] SessionState export_state() const;

    /// Canonical rendering of the effective configuration; embedded in
    /// snapshots and checked on restore.
    [[nodiscard]] const std::string& config_fingerprint() const noexcept {
        return fingerprint_;
    }

    /// How many grid points the scenario expands to (the CLI warns when a
    /// session silently serves only the first of several).
    [[nodiscard]] std::size_t grid_points() const noexcept {
        return grid_points_;
    }

private:
    struct JobSpec {
        std::string user;
        int cores = 1;
        double runtime_ic_s = 0.0;
        double power_ic_w = 0.0;
        ga::workload::JobCounters counters;
        double submit_s = 0.0;
    };

    /// Routing result: the per-cluster predictions/prices and the policy's
    /// pick.
    struct Routed {
        std::optional<std::size_t> chosen;
        std::vector<ga::sim::MachineChoice> choices;
        std::vector<double> runtime_s;  ///< per cluster
        std::vector<double> power_w;    ///< per cluster
    };

    void init_config(ga::io::ScenarioFile scenario);

    [[nodiscard]] ga::io::JsonValue dispatch(const Request& request);

    // one handler per request type
    [[nodiscard]] ga::io::JsonValue handle_create_account(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_submit_jobs(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_quote(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_charge(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_refund(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_balance(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_stats(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_metrics(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_advance(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_checkpoint(const Request& r);
    [[nodiscard]] ga::io::JsonValue handle_shutdown(const Request& r);

    [[nodiscard]] Routed route(const JobSpec& job, double priced_at) const;
    [[nodiscard]] ga::io::JsonValue submit_one(const JobSpec& job);
    [[nodiscard]] JobSpec generate_job(double submit_s);

    /// Advances the logical clock to `t`, completing running jobs whose
    /// finish time has passed and starting queued jobs (strict FIFO) as
    /// cores free up. Returns the number of completions.
    std::uint64_t advance_to(double t);

    // ---- configuration (immutable after construction) -------------------
    std::string fingerprint_;
    ga::sim::SimOptions options_;
    std::vector<ga::sim::ClusterConfig> cluster_cfgs_;
    std::shared_ptr<ga::workload::CrossPlatformPredictor> predictor_;
    std::vector<std::size_t> predictor_index_;  ///< cluster -> predictor slot
    std::unique_ptr<const ga::acct::Accountant> pricer_;
    /// Session copies of the defined currencies' accountants (sorted by
    /// currency) for quote-time pricing; the Ledger holds its own instances
    /// for the authoritative charge path.
    std::vector<std::pair<std::string, std::unique_ptr<const ga::acct::Accountant>>>
        currency_pricers_;
    std::unique_ptr<const ga::sim::RoutingPolicy> routing_;
    /// Intensity lookups for the policy context (grid-bound under
    /// regional_grids, catalog averages otherwise).
    std::unique_ptr<ga::acct::CarbonBasedAccounting> cba_;
    bool fill_grid_intensity_ = false;
    bool fill_grid_forecast_ = false;
    std::size_t generate_users_ = 1;  ///< user-pool size for the generate path
    std::size_t grid_points_ = 1;

    // ---- live state (snapshot surface) -----------------------------------
    double clock_ = 0.0;
    std::uint64_t next_seq_ = 1;
    ga::util::Rng rng_;
    std::uint64_t jobs_submitted_ = 0;
    std::uint64_t jobs_rejected_ = 0;
    double primary_spent_ = 0.0;
    std::vector<ClusterSessionState> clusters_;
    ga::acct::Ledger ledger_;
    bool shutdown_ = false;

    // ---- observability (not part of the snapshot surface) ----------------
    // Logical request tallies for the `metrics` verb. Deliberately outside
    // export_state(): a restored session starts counting afresh, and the
    // golden-transcript contract (same scenario + lines -> same bytes)
    // still holds because the tallies are a pure function of the lines
    // handled since construction.
    std::uint64_t requests_served_ = 0;
    std::uint64_t request_errors_ = 0;
};

}  // namespace ga::service
