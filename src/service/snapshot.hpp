// Versioned durable snapshots of a ga-serve session.
//
// `SessionState` is the complete value-type image of a live session —
// ledger (accounts, transactions, refund links, currency specs), the
// logical clock, per-cluster running/queued jobs, the RNG stream, and a
// configuration fingerprint — everything needed to restart the daemon and
// continue byte-identically. The codec turns it into a self-validating
// binary blob:
//
//   offset  size  field
//   0       8     magic "GASNAPSH"
//   8       4     format version (u32, currently 1)
//   12      4     endianness tag 0x01020304 (u32)
//   16      8     payload length in bytes (u64)
//   24      8     FNV-1a 64 checksum of the payload (u64)
//   32      ...   payload
//
// Every integer is pinned little-endian by explicit byte shifts and every
// double travels as its IEEE-754 bit pattern, so a snapshot written on any
// supported host restores bit-exactly on any other. Decoding rejects, with
// a named diagnostic: short headers, bad magic, versions other than 1
// (forward compatibility is refusal, never a guess), endianness-tag
// mismatches, length/checksum mismatches, truncation inside any field
// (each error names the field being read), and trailing garbage.
//
// encode is a pure function of the state: encode(decode(encode(s))) is
// byte-identical to encode(s) — the round-trip bit-exactness the tests pin.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/allocation.hpp"
#include "util/rng.hpp"

namespace ga::service {

/// Current snapshot format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// One cluster's live scheduling state.
struct ClusterSessionState {
    /// A started job: occupies `cores` until the clock reaches `finish_s`.
    struct RunningJob {
        std::uint64_t seq = 0;  ///< session-wide submission sequence number
        std::string user;
        int cores = 0;
        double finish_s = 0.0;

        bool operator==(const RunningJob&) const = default;
    };

    /// A waiting job: starts (strict FIFO) once enough cores free up.
    struct QueuedJob {
        std::uint64_t seq = 0;
        std::string user;
        int cores = 0;
        double runtime_s = 0.0;  ///< predicted runtime on this cluster
        double submit_s = 0.0;

        bool operator==(const QueuedJob&) const = default;
    };

    std::string name;  ///< catalog machine name ("FASTER", ...)
    int capacity_cores = 0;
    int free_cores = 0;
    /// Sorted by (finish_s, seq) — the completion order.
    std::vector<RunningJob> running;
    /// FIFO, front starts first.
    std::vector<QueuedJob> queue;
    std::uint64_t started = 0;
    std::uint64_t completed = 0;

    bool operator==(const ClusterSessionState&) const = default;
};

/// The complete durable state of one session.
struct SessionState {
    /// Canonical rendering of the effective configuration (scenario name,
    /// workload knobs, resolved grid point). Restore refuses a snapshot
    /// whose fingerprint differs from the serving scenario's: replaying
    /// requests against a different configuration would silently diverge.
    std::string config_fingerprint;
    double clock_s = 0.0;
    std::uint64_t next_seq = 1;  ///< next job submission sequence number
    ga::util::RngState rng;      ///< the generate-path arrival stream
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_rejected = 0;
    double primary_spent = 0.0;  ///< routing-cost spend against SimOptions::budget
    std::vector<ClusterSessionState> clusters;
    ga::acct::LedgerState ledger;

    bool operator==(const SessionState&) const = default;
};

/// Serializes a session to the versioned binary form described above.
[[nodiscard]] std::string encode_snapshot(const SessionState& state);

/// Parses and validates a snapshot; throws ga::util::RuntimeError with a
/// named diagnostic on any corruption, truncation, or unknown version.
[[nodiscard]] SessionState decode_snapshot(std::string_view bytes);

/// FNV-1a 64 over arbitrary bytes — the header checksum (exposed so tests
/// and the checkpoint response can name it).
[[nodiscard]] std::uint64_t snapshot_checksum(std::string_view bytes) noexcept;

/// Writes `encode_snapshot(state)` to `path` (atomically: a temp file in
/// the same directory, then rename). Throws RuntimeError on I/O failure.
void write_snapshot_file(const std::filesystem::path& path,
                         const SessionState& state);

/// Reads and decodes a snapshot file; errors are prefixed with the path.
[[nodiscard]] SessionState read_snapshot_file(const std::filesystem::path& path);

}  // namespace ga::service
