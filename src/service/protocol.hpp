// Request/response schema of the ga-serve line protocol.
//
// One request per line, one response per line (framing: util/framing.hpp).
// A request is a JSON object with two reserved keys plus a handler-specific
// payload:
//
//   {"id": 7, "type": "balance", "user": "alice"}
//
// `id` is a client-chosen non-negative integer (at most 2^53 so it survives
// JSON's double transport losslessly) echoed verbatim in the response, and
// `type` names the handler. Responses are:
//
//   {"id": 7, "ok": true,  "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": "unknown_user", "message": "..."}}
//
// A request so malformed its id cannot be recovered (parse error, non-object,
// bad id field) is answered with "id": null. Error codes are stable protocol
// surface; messages are human-readable diagnostics (io/json parse errors
// pass through with their line/column positions).
//
// Parsing is strict in both directions: unknown keys in a request are
// rejected (check_keys), so a typo'd optional field fails loudly instead of
// being silently ignored — the same posture as the scenario loader.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

#include "io/json.hpp"
#include "util/error.hpp"

namespace ga::service {

/// A protocol-level failure: carries the stable machine-readable `code`
/// placed in the response's error object alongside the human message.
class ProtocolError : public ga::util::RuntimeError {
public:
    ProtocolError(std::string code, const std::string& message)
        : ga::util::RuntimeError(message), code_(std::move(code)) {}

    [[nodiscard]] const std::string& code() const noexcept { return code_; }

private:
    std::string code_;
};

/// One parsed request: the echoed id, the handler name, and the full
/// request object (handlers pull their payload fields from it).
struct Request {
    std::uint64_t id = 0;
    std::string type;
    ga::io::JsonValue body;  ///< the whole request object
};

/// Largest accepted request id: 2^53, the last integer a JSON double
/// carries exactly.
inline constexpr std::uint64_t kMaxRequestId = 1ULL << 53;

/// Parses and validates one request line. Throws ProtocolError — code
/// "parse_error" for malformed JSON, "bad_request" for a well-formed
/// document violating the envelope (not an object, missing/invalid id or
/// type).
[[nodiscard]] Request parse_request(std::string_view line);

/// Best-effort id recovery from a line that failed full validation, for
/// the "id" field of the error response: returns the id only when the line
/// parses to an object with a valid id. Never throws.
[[nodiscard]] std::optional<std::uint64_t> recover_request_id(
    std::string_view line) noexcept;

/// {"id": N, "ok": true, "result": ...}
[[nodiscard]] ga::io::JsonValue ok_response(std::uint64_t id,
                                            ga::io::JsonValue result);

/// {"id": N|null, "ok": false, "error": {"code": ..., "message": ...}}
[[nodiscard]] ga::io::JsonValue error_response(std::optional<std::uint64_t> id,
                                               std::string_view code,
                                               std::string_view message);

/// Compact single-line rendering (write_json with indent 0) — the byte
/// representation the determinism contract pins.
[[nodiscard]] std::string render(const ga::io::JsonValue& value);

// ---- strict payload field access ---------------------------------------
// Helpers the handlers use to pull typed fields from the request object.
// All throw ProtocolError("bad_request", ...) naming the offending field.

/// Rejects keys outside `allowed` ("id" and "type" are always allowed).
void check_keys(const ga::io::JsonValue& body,
                std::initializer_list<std::string_view> allowed,
                std::string_view context);

[[nodiscard]] const std::string& string_field(const ga::io::JsonValue& body,
                                              std::string_view key,
                                              std::string_view context);

[[nodiscard]] double number_field(const ga::io::JsonValue& body,
                                  std::string_view key,
                                  std::string_view context);

[[nodiscard]] double number_field_or(const ga::io::JsonValue& body,
                                     std::string_view key,
                                     std::string_view context,
                                     double fallback);

/// Non-negative integer (stored as a JSON number; must be integral and
/// at most 2^53).
[[nodiscard]] std::uint64_t uint_field(const ga::io::JsonValue& body,
                                       std::string_view key,
                                       std::string_view context);

}  // namespace ga::service
