#include "service/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace ga::service {

namespace {

constexpr char kMagic[8] = {'G', 'A', 'S', 'N', 'A', 'P', 'S', 'H'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

[[noreturn]] void fail(const std::string& what) {
    throw ga::util::RuntimeError("snapshot: " + what);
}

// ---- encoding: every integer little-endian via explicit byte shifts ----

void put_u32(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
}

void put_i32(std::string& out, std::int32_t v) {
    put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
    put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(std::string& out, bool v) {
    out.push_back(v ? '\x01' : '\x00');
}

void put_string(std::string& out, std::string_view s) {
    put_u64(out, s.size());
    out.append(s);
}

// ---- decoding: a cursor that names the field it was reading on failure --

class Cursor {
public:
    explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

    std::uint32_t u32(std::string_view field) {
        const auto* p = take(4, field);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
                 << (8 * i);
        }
        return v;
    }

    std::uint64_t u64(std::string_view field) {
        const auto* p = take(8, field);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
                 << (8 * i);
        }
        return v;
    }

    std::int32_t i32(std::string_view field) {
        return static_cast<std::int32_t>(u32(field));
    }

    double f64(std::string_view field) {
        return std::bit_cast<double>(u64(field));
    }

    bool boolean(std::string_view field) {
        const auto* p = take(1, field);
        const unsigned char v = static_cast<unsigned char>(*p);
        if (v > 1) {
            fail("invalid boolean reading " + std::string(field));
        }
        return v == 1;
    }

    std::string str(std::string_view field) {
        const std::uint64_t len = u64(field);
        if (len > remaining()) {
            fail("truncated reading " + std::string(field));
        }
        const auto* p = take(static_cast<std::size_t>(len), field);
        return std::string(p, static_cast<std::size_t>(len));
    }

    /// Element-count prefix; bounded by the remaining bytes so a corrupt
    /// count cannot drive a multi-gigabyte reserve.
    std::size_t count(std::string_view field) {
        const std::uint64_t n = u64(field);
        if (n > remaining()) {
            fail("implausible element count reading " + std::string(field));
        }
        return static_cast<std::size_t>(n);
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return bytes_.size() - pos_;
    }

private:
    const char* take(std::size_t n, std::string_view field) {
        if (remaining() < n) {
            fail("truncated reading " + std::string(field));
        }
        const char* p = bytes_.data() + pos_;
        pos_ += n;
        return p;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

// ---- payload schema (version 1) ----------------------------------------

void encode_ledger(std::string& out, const ga::acct::LedgerState& ledger) {
    put_u64(out, ledger.currencies.size());
    for (const auto& [currency, spec] : ledger.currencies) {
        put_string(out, currency);
        put_string(out, spec.name);
        put_u64(out, spec.params.size());
        for (const auto& [key, value] : spec.params) {
            put_string(out, key);
            put_f64(out, value);
        }
    }
    put_u64(out, ledger.accounts.size());
    for (const auto& account : ledger.accounts) {
        put_string(out, account.user);
        put_u64(out, account.first_valid_tx);
        put_u64(out, account.holdings.size());
        for (const auto& [currency, alloc] : account.holdings) {
            put_string(out, currency);
            put_f64(out, alloc.budget);
            put_f64(out, alloc.spent);
        }
    }
    put_u64(out, ledger.transactions.size());
    for (const auto& t : ledger.transactions) {
        put_u64(out, t.id);
        put_string(out, t.user);
        put_string(out, t.machine);
        put_string(out, t.currency);
        put_string(out, t.unit);
        put_f64(out, t.cost);
        put_f64(out, t.duration_s);
        put_f64(out, t.energy_j);
        put_f64(out, t.priced_at_s);
        put_i32(out, t.cores);
        put_i32(out, t.gpus);
        put_u64(out, t.refund_of);
    }
    put_u64(out, ledger.refunded.size());
    for (const std::uint64_t id : ledger.refunded) put_u64(out, id);
    put_u64(out, ledger.next_id);
}

ga::acct::LedgerState decode_ledger(Cursor& in) {
    ga::acct::LedgerState ledger;
    const std::size_t n_currencies = in.count("ledger.currencies");
    ledger.currencies.reserve(n_currencies);
    for (std::size_t i = 0; i < n_currencies; ++i) {
        std::string currency = in.str("ledger.currency.name");
        ga::acct::AccountantSpec spec;
        spec.name = in.str("ledger.currency.spec");
        const std::size_t n_params = in.count("ledger.currency.params");
        for (std::size_t p = 0; p < n_params; ++p) {
            std::string key = in.str("ledger.currency.param.key");
            spec.params.emplace(std::move(key),
                                in.f64("ledger.currency.param.value"));
        }
        ledger.currencies.emplace_back(std::move(currency), std::move(spec));
    }
    const std::size_t n_accounts = in.count("ledger.accounts");
    ledger.accounts.reserve(n_accounts);
    for (std::size_t i = 0; i < n_accounts; ++i) {
        ga::acct::LedgerState::AccountState account;
        account.user = in.str("ledger.account.user");
        account.first_valid_tx = in.u64("ledger.account.first_valid_tx");
        const std::size_t n_holdings = in.count("ledger.account.holdings");
        account.holdings.reserve(n_holdings);
        for (std::size_t h = 0; h < n_holdings; ++h) {
            std::string currency = in.str("ledger.holding.currency");
            ga::acct::LedgerState::AllocationState alloc;
            alloc.budget = in.f64("ledger.holding.budget");
            alloc.spent = in.f64("ledger.holding.spent");
            account.holdings.emplace_back(std::move(currency), alloc);
        }
        ledger.accounts.push_back(std::move(account));
    }
    const std::size_t n_transactions = in.count("ledger.transactions");
    ledger.transactions.reserve(n_transactions);
    for (std::size_t i = 0; i < n_transactions; ++i) {
        ga::acct::Transaction t;
        t.id = in.u64("transaction.id");
        t.user = in.str("transaction.user");
        t.machine = in.str("transaction.machine");
        t.currency = in.str("transaction.currency");
        t.unit = in.str("transaction.unit");
        t.cost = in.f64("transaction.cost");
        t.duration_s = in.f64("transaction.duration_s");
        t.energy_j = in.f64("transaction.energy_j");
        t.priced_at_s = in.f64("transaction.priced_at_s");
        t.cores = in.i32("transaction.cores");
        t.gpus = in.i32("transaction.gpus");
        t.refund_of = in.u64("transaction.refund_of");
        ledger.transactions.push_back(std::move(t));
    }
    const std::size_t n_refunded = in.count("ledger.refunded");
    ledger.refunded.reserve(n_refunded);
    for (std::size_t i = 0; i < n_refunded; ++i) {
        ledger.refunded.push_back(in.u64("ledger.refunded.id"));
    }
    ledger.next_id = in.u64("ledger.next_id");
    return ledger;
}

void encode_cluster(std::string& out, const ClusterSessionState& cluster) {
    put_string(out, cluster.name);
    put_i32(out, cluster.capacity_cores);
    put_i32(out, cluster.free_cores);
    put_u64(out, cluster.running.size());
    for (const auto& job : cluster.running) {
        put_u64(out, job.seq);
        put_string(out, job.user);
        put_i32(out, job.cores);
        put_f64(out, job.finish_s);
    }
    put_u64(out, cluster.queue.size());
    for (const auto& job : cluster.queue) {
        put_u64(out, job.seq);
        put_string(out, job.user);
        put_i32(out, job.cores);
        put_f64(out, job.runtime_s);
        put_f64(out, job.submit_s);
    }
    put_u64(out, cluster.started);
    put_u64(out, cluster.completed);
}

ClusterSessionState decode_cluster(Cursor& in) {
    ClusterSessionState cluster;
    cluster.name = in.str("cluster.name");
    cluster.capacity_cores = in.i32("cluster.capacity_cores");
    cluster.free_cores = in.i32("cluster.free_cores");
    const std::size_t n_running = in.count("cluster.running");
    cluster.running.reserve(n_running);
    for (std::size_t i = 0; i < n_running; ++i) {
        ClusterSessionState::RunningJob job;
        job.seq = in.u64("running.seq");
        job.user = in.str("running.user");
        job.cores = in.i32("running.cores");
        job.finish_s = in.f64("running.finish_s");
        cluster.running.push_back(std::move(job));
    }
    const std::size_t n_queue = in.count("cluster.queue");
    cluster.queue.reserve(n_queue);
    for (std::size_t i = 0; i < n_queue; ++i) {
        ClusterSessionState::QueuedJob job;
        job.seq = in.u64("queued.seq");
        job.user = in.str("queued.user");
        job.cores = in.i32("queued.cores");
        job.runtime_s = in.f64("queued.runtime_s");
        job.submit_s = in.f64("queued.submit_s");
        cluster.queue.push_back(std::move(job));
    }
    cluster.started = in.u64("cluster.started");
    cluster.completed = in.u64("cluster.completed");
    return cluster;
}

std::string encode_payload(const SessionState& state) {
    std::string out;
    put_string(out, state.config_fingerprint);
    put_f64(out, state.clock_s);
    put_u64(out, state.next_seq);
    for (const std::uint64_t word : state.rng.gen) put_u64(out, word);
    put_u64(out, state.rng.lineage);
    put_f64(out, state.rng.spare_normal);
    put_bool(out, state.rng.has_spare_normal);
    put_u64(out, state.jobs_submitted);
    put_u64(out, state.jobs_rejected);
    put_f64(out, state.primary_spent);
    put_u64(out, state.clusters.size());
    for (const auto& cluster : state.clusters) encode_cluster(out, cluster);
    encode_ledger(out, state.ledger);
    return out;
}

SessionState decode_payload(std::string_view payload) {
    Cursor in(payload);
    SessionState state;
    state.config_fingerprint = in.str("config_fingerprint");
    state.clock_s = in.f64("clock_s");
    state.next_seq = in.u64("next_seq");
    for (std::uint64_t& word : state.rng.gen) word = in.u64("rng.gen");
    state.rng.lineage = in.u64("rng.lineage");
    state.rng.spare_normal = in.f64("rng.spare_normal");
    state.rng.has_spare_normal = in.boolean("rng.has_spare_normal");
    state.jobs_submitted = in.u64("jobs_submitted");
    state.jobs_rejected = in.u64("jobs_rejected");
    state.primary_spent = in.f64("primary_spent");
    const std::size_t n_clusters = in.count("clusters");
    state.clusters.reserve(n_clusters);
    for (std::size_t i = 0; i < n_clusters; ++i) {
        state.clusters.push_back(decode_cluster(in));
    }
    state.ledger = decode_ledger(in);
    if (in.remaining() != 0) {
        fail(std::to_string(in.remaining()) +
             " trailing bytes after the payload");
    }
    return state;
}

}  // namespace

std::uint64_t snapshot_checksum(std::string_view bytes) noexcept {
    // FNV-1a 64 — the project hash (same constants as the broker's
    // partitioner); enough to catch corruption, not a cryptographic seal.
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string encode_snapshot(const SessionState& state) {
    const std::string payload = encode_payload(state);
    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    out.append(kMagic, sizeof kMagic);
    put_u32(out, kSnapshotVersion);
    put_u32(out, kEndianTag);
    put_u64(out, payload.size());
    put_u64(out, snapshot_checksum(payload));
    out.append(payload);
    return out;
}

SessionState decode_snapshot(std::string_view bytes) {
    if (bytes.size() < kHeaderBytes) {
        fail("header truncated (" + std::to_string(bytes.size()) + " of " +
             std::to_string(kHeaderBytes) + " bytes)");
    }
    if (bytes.substr(0, sizeof kMagic) !=
        std::string_view(kMagic, sizeof kMagic)) {
        fail("bad magic; not a ga-serve snapshot");
    }
    Cursor header(bytes.substr(sizeof kMagic, kHeaderBytes - sizeof kMagic));
    const std::uint32_t version = header.u32("version");
    if (version != kSnapshotVersion) {
        fail("unsupported version " + std::to_string(version) +
             " (this build reads version " + std::to_string(kSnapshotVersion) +
             ")");
    }
    const std::uint32_t endian = header.u32("endian_tag");
    if (endian != kEndianTag) {
        fail("endianness tag mismatch; snapshot bytes were reordered");
    }
    const std::uint64_t payload_len = header.u64("payload_len");
    const std::uint64_t checksum = header.u64("checksum");
    const std::string_view payload = bytes.substr(kHeaderBytes);
    if (payload.size() != payload_len) {
        fail("payload length mismatch: header says " +
             std::to_string(payload_len) + ", found " +
             std::to_string(payload.size()));
    }
    if (snapshot_checksum(payload) != checksum) {
        fail("checksum mismatch; the payload is corrupted");
    }
    return decode_payload(payload);
}

void write_snapshot_file(const std::filesystem::path& path,
                         const SessionState& state) {
    const std::string bytes = encode_snapshot(state);
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
        if (f == nullptr) {
            fail("cannot open " + tmp.string() + " for writing");
        }
        const std::size_t written =
            std::fwrite(bytes.data(), 1, bytes.size(), f);
        const int close_rc = std::fclose(f);
        if (written != bytes.size() || close_rc != 0) {
            std::filesystem::remove(tmp);
            fail("short write to " + tmp.string());
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp);
        fail("cannot rename " + tmp.string() + " to " + path.string() + ": " +
             ec.message());
    }
}

SessionState read_snapshot_file(const std::filesystem::path& path) {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) {
        fail("cannot open " + path.string());
    }
    std::string bytes;
    char buffer[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
        bytes.append(buffer, n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        fail("read error on " + path.string());
    }
    try {
        return decode_snapshot(bytes);
    } catch (const ga::util::RuntimeError& e) {
        throw ga::util::RuntimeError(path.string() + ": " + e.what());
    }
}

}  // namespace ga::service
