// The machine population of the paper, as a built-in catalog.
//
// Three groups:
//   * Chameleon CPU nodes (Table 1 / Table 4 / Fig. 4): Desktop,
//     Cascade Lake, Ice Lake, Zen3.
//   * Simulation machines (Table 5): TAMU FASTER, Desktop, Institutional
//     Cluster (IC), ALCF Theta.
//   * Grid'5000 GPU hosts (Table 2): P100, V100, A100 nodes.
//
// Per-machine model constants (sustained GFlop/s per core, active watts per
// core, bandwidth, embodied platform overhead) are calibrated against the
// paper's published measurements; EXPERIMENTS.md records the paper-vs-model
// comparison for every table.
#pragma once

#include <string_view>
#include <vector>

#include "machine/embodied.hpp"
#include "machine/spec.hpp"

namespace ga::machine {

/// Stable identifiers for every machine in the paper.
enum class CatalogId {
    Desktop,               ///< i7-10700 workstation (Tables 1, 4, 5)
    CascadeLake,           ///< 2x Xeon 6248R Chameleon node (Tables 1, 4)
    IceLake,               ///< 2x Xeon Platinum 8380 Chameleon node (Tables 1, 4)
    Zen3,                  ///< 2x EPYC 7763 Chameleon node (Tables 1, 4)
    Faster,                ///< TAMU FASTER node (Table 5)
    InstitutionalCluster,  ///< UChicago Midway-like IC node (Table 5)
    Theta,                 ///< ALCF Theta KNL node (Table 5)
    P100Node,              ///< Grid'5000 P100 host (Tables 2, 3)
    V100Node,              ///< Grid'5000 V100 host (Tables 2, 3)
    A100Node,              ///< Grid'5000 A100 host (Tables 2, 3)
};

/// One catalog machine plus the context needed by the accounting models.
struct CatalogEntry {
    CatalogId id{};
    NodeSpec node;
    double platform_overhead_kg = 200.0;  ///< embodied platform share (SCARIF)
    int reference_year = 2024;  ///< year the paper's measurements were taken;
                                ///< machine age = reference_year - deployed
    double avg_carbon_intensity = 450.0;  ///< gCO2e/kWh (paper Tables 2, 5)
    std::string grid_region;  ///< Fig-7 low-carbon grid assignment ("" = none)
    /// Facility Power Usage Effectiveness: total facility power over IT
    /// power. §3.2: "to account for differences in data-center design and
    /// cooling, the measured energy could be multiplied by the PUE".
    double pue = 1.0;

    /// Age (years) at the reference measurement year.
    [[nodiscard]] double age_years() const noexcept {
        return node.age_years(static_cast<double>(reference_year));
    }

    /// SCARIF-style embodied estimate for this node.
    [[nodiscard]] EmbodiedEstimate embodied() const {
        return estimate_embodied(EmbodiedInput{node, platform_overhead_kg});
    }
};

/// The full built-in catalog (all ten machines).
[[nodiscard]] const std::vector<CatalogEntry>& catalog();

/// Lookup by id; throws PreconditionError for an id not in the catalog.
[[nodiscard]] const CatalogEntry& find(CatalogId id);

/// Lookup by display name (e.g. "Desktop"); throws RuntimeError when absent.
[[nodiscard]] const CatalogEntry& find(std::string_view name);

/// The four Chameleon CPU nodes of Table 1 / Fig. 4, in paper row order.
[[nodiscard]] std::vector<CatalogEntry> chameleon_cpu_nodes();

/// The four simulation machines of Table 5, in paper row order
/// (FASTER, Desktop, IC, Theta).
[[nodiscard]] std::vector<CatalogEntry> simulation_machines();

/// The three GPU hosts of Table 2 (P100, V100, A100).
[[nodiscard]] std::vector<CatalogEntry> gpu_nodes();

}  // namespace ga::machine
