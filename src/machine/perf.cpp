#include "machine/perf.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ga::machine {

ExecutionEstimate CpuPerfModel::execute(const WorkProfile& profile,
                                        const NodeSpec& node,
                                        int cores_used) const {
    GA_REQUIRE(cores_used >= 1, "perf: cores_used must be positive");
    GA_REQUIRE(cores_used <= node.total_cores(),
               "perf: cores_used exceeds node capacity");
    GA_REQUIRE(profile.flops >= 0.0 && profile.mem_bytes >= 0.0,
               "perf: negative work profile");
    GA_REQUIRE(profile.parallel_fraction >= 0.0 && profile.parallel_fraction <= 1.0,
               "perf: parallel fraction must be in [0,1]");

    // --- single-core roofline (with all-core throttling) ---
    const int total = node.total_cores();
    const double occupancy =
        total > 1 ? static_cast<double>(cores_used - 1) /
                        static_cast<double>(total - 1)
                  : 0.0;
    const double throttle = 1.0 - node.cpu.allcore_throttle * occupancy;
    const double core_flops =
        node.cpu.sustained_gflops_per_core * throttle * 1e9;
    // Memory bandwidth is provisioned with the cores: a task holding k of N
    // cores gets k/N of the node bandwidth (fair-share, as cgroup-managed
    // clusters approximate).
    const double node_bw =
        node.cpu.mem_bw_gbs * static_cast<double>(node.sockets) * 1e9;
    const double core_bw = node_bw / static_cast<double>(node.total_cores());

    const double t_compute_1 = profile.flops / core_flops;
    const double t_memory_1 = profile.mem_bytes / core_bw;
    const double t1 = std::max(t_compute_1, t_memory_1);

    // --- Amdahl scaling over the provisioned cores ---
    const double p = profile.parallel_fraction;
    const double n = static_cast<double>(cores_used);
    const double t = t1 * ((1.0 - p) + p / n);

    ExecutionEstimate out;
    out.seconds = t;
    // Compute intensity decides how hard the cores work: memory-bound code
    // stalls and draws less than compute-bound code.
    const double intensity = t1 > 0.0 ? t_compute_1 / t1 : 1.0;
    out.activity =
        options_.memory_bound_activity + (1.0 - options_.memory_bound_activity) * intensity;
    const double active_w =
        n * node.cpu.active_watts_per_core * out.activity;
    out.joules = active_w * t;
    out.avg_watts = t > 0.0 ? out.joules / t : 0.0;
    out.idle_share_j =
        node.idle_w() * (n / static_cast<double>(node.total_cores())) * t;
    return out;
}

double CpuPerfModel::joules_per_flop(const NodeSpec& node) noexcept {
    const double core_flops = node.cpu.sustained_gflops_per_core * 1e9;
    return node.cpu.active_watts_per_core / core_flops;
}

}  // namespace ga::machine
