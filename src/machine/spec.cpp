#include "machine/spec.hpp"

namespace ga::machine {

std::string_view to_string(Vendor v) noexcept {
    switch (v) {
        case Vendor::Intel: return "Intel";
        case Vendor::Amd: return "AMD";
        case Vendor::Nvidia: return "Nvidia";
    }
    return "unknown";
}

}  // namespace ga::machine
