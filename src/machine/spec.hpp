// Hardware descriptions for the machines the paper measures and simulates.
//
// A NodeSpec is the unit of accounting: the paper's EBA charges against the
// processor TDP of the provisioned share of a node, and CBA charges a share
// of the node's embodied carbon.
#pragma once

#include <string>
#include <vector>

namespace ga::machine {

/// Processor vendor (affects nothing functionally; kept for reporting).
enum class Vendor { Intel, Amd, Nvidia };

[[nodiscard]] std::string_view to_string(Vendor v) noexcept;

/// One CPU socket.
///
/// `sustained_gflops_per_core` and `active_watts_per_core` are *effective*
/// values calibrated against the paper's measurements (Table 1, Fig. 4);
/// they encode both microarchitecture and the achievable fraction of peak
/// for the benchmark suite.
struct CpuSpec {
    std::string model;
    Vendor vendor = Vendor::Intel;
    int year = 2020;                      ///< release year
    int cores = 1;                        ///< physical cores per socket
    double tdp_w = 100.0;                 ///< socket thermal design power
    double idle_w = 20.0;                 ///< socket idle power
    double sustained_gflops_per_core = 10.0;
    double active_watts_per_core = 5.0;   ///< incremental power of one busy core
    double mem_bw_gbs = 100.0;            ///< socket memory bandwidth (GB/s)
    double peak_score_per_thread = 1.0;   ///< PassMark-like per-thread peak
                                          ///< rating: the "Peak" accounting rate
    /// All-core frequency throttling: fraction of the single-core sustained
    /// rate LOST when every core is busy (TDP-limited desktop parts lose far
    /// more than server parts). Effective per-core rate at n busy cores is
    /// sustained * (1 - allcore_throttle * (n-1)/(cores_total-1)).
    double allcore_throttle = 0.12;
};

/// One GPU device (Table 2 population).
struct GpuSpec {
    std::string model;
    int year = 2020;
    double gflops = 10000.0;    ///< manufacturer-reported SP GFlop/s
    double tdp_w = 250.0;
    double idle_w = 30.0;
    double mem_gb = 16.0;
    double pcie_gbs = 12.0;     ///< host<->device bandwidth per GPU
    double embodied_kg = 150.0; ///< device-only embodied carbon (SCARIF-like)
};

/// A node: one or more identical CPU sockets, optional identical GPUs.
struct NodeSpec {
    std::string name;            ///< e.g. "Desktop", "Cascade Lake", "FASTER"
    CpuSpec cpu;
    int sockets = 1;
    int gpu_count = 0;
    GpuSpec gpu;                 ///< meaningful only when gpu_count > 0
    double dram_gb = 128.0;
    double ssd_tb = 1.0;
    int year_deployed = 2021;    ///< when the machine entered service
    double node_idle_w = 0.0;    ///< measured all-socket idle; 0 -> derive

    [[nodiscard]] int total_cores() const noexcept { return cpu.cores * sockets; }

    /// Total CPU TDP across sockets (the paper's "CPU TDP" column).
    [[nodiscard]] double total_cpu_tdp_w() const noexcept {
        return cpu.tdp_w * sockets;
    }

    /// TDP attributed to one provisioned core — EBA's potential-use term for
    /// per-core provisioned jobs (green-ACCESS provisions CPUs by core).
    [[nodiscard]] double tdp_per_core_w() const noexcept {
        return total_cpu_tdp_w() / static_cast<double>(total_cores());
    }

    /// Idle power of the whole node (explicit measurement when provided).
    [[nodiscard]] double idle_w() const noexcept {
        return node_idle_w > 0.0 ? node_idle_w
                                 : cpu.idle_w * sockets +
                                       gpu.idle_w * gpu_count;
    }

    /// Machine age in (fractional) years at an absolute year.
    [[nodiscard]] double age_years(double at_year) const noexcept {
        const double age = at_year - static_cast<double>(year_deployed);
        return age > 0.0 ? age : 0.0;
    }
};

}  // namespace ga::machine
