#include "machine/embodied.hpp"

#include "util/error.hpp"

namespace ga::machine {

EmbodiedEstimate estimate_embodied(const EmbodiedInput& input,
                                   const EmbodiedFactors& factors) {
    const NodeSpec& node = input.node;
    GA_REQUIRE(node.sockets >= 1, "embodied: node needs at least one socket");
    GA_REQUIRE(node.cpu.cores >= 1, "embodied: cpu needs at least one core");
    GA_REQUIRE(node.gpu_count >= 0, "embodied: negative gpu count");

    EmbodiedEstimate e;
    e.platform_kg = input.platform_overhead_kg;
    e.cpu_kg = static_cast<double>(node.sockets) *
               (factors.cpu_base_kg +
                factors.cpu_per_core_kg * static_cast<double>(node.cpu.cores));
    e.dram_kg = node.dram_gb * factors.dram_kg_per_gb;
    e.ssd_kg = node.ssd_tb * factors.ssd_kg_per_tb;
    e.gpu_kg = static_cast<double>(node.gpu_count) * node.gpu.embodied_kg;
    return e;
}

}  // namespace ga::machine
