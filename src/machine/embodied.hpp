// SCARIF-like embodied-carbon estimation.
//
// The paper computes embodied carbon "using manufacturers datasheets where
// available or SCARIF [25]". SCARIF estimates server embodied carbon from a
// bill of materials; we implement the same component decomposition with
// published per-component factors:
//
//   embodied = platform_overhead            (chassis, mainboard, PSU, fabric share)
//            + sockets * (cpu_base + cpu_per_core * cores)
//            + dram_gb * dram_factor
//            + ssd_tb  * ssd_factor
//            + gpu_count * gpu_embodied
//
// The factors are calibration constants fitted so that applying the paper's
// double-declining-balance schedule to the estimate reproduces the carbon
// rates the paper reports (Tables 2 and 5); see EXPERIMENTS.md.
#pragma once

#include "machine/spec.hpp"

namespace ga::machine {

/// Per-component embodied carbon factors (kgCO2e).
struct EmbodiedFactors {
    double cpu_base_kg = 25.0;       ///< per socket package + substrate
    double cpu_per_core_kg = 1.0;    ///< die area scales with core count
    double dram_kg_per_gb = 1.3;
    double ssd_kg_per_tb = 160.0;

    [[nodiscard]] static EmbodiedFactors defaults() noexcept { return {}; }
};

/// Extra per-node information the estimator needs beyond NodeSpec.
/// `platform_overhead_kg` is the per-node share of chassis, mainboard, power
/// delivery and (for clusters) fabric/storage infrastructure.
struct EmbodiedInput {
    NodeSpec node;
    double platform_overhead_kg = 200.0;
};

/// Itemized estimate, so benches can print the SCARIF-style breakdown.
struct EmbodiedEstimate {
    double platform_kg = 0.0;
    double cpu_kg = 0.0;
    double dram_kg = 0.0;
    double ssd_kg = 0.0;
    double gpu_kg = 0.0;

    [[nodiscard]] double total_kg() const noexcept {
        return platform_kg + cpu_kg + dram_kg + ssd_kg + gpu_kg;
    }
    [[nodiscard]] double total_g() const noexcept { return total_kg() * 1000.0; }
};

/// Runs the component model.
[[nodiscard]] EmbodiedEstimate estimate_embodied(
    const EmbodiedInput& input, const EmbodiedFactors& factors = {});

}  // namespace ga::machine
