#include "machine/catalog.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ga::machine {

namespace {

CpuSpec make_cpu(std::string model, Vendor vendor, int year, int cores, double tdp,
                 double idle, double gflops_core, double watts_core, double bw,
                 double peak_score, double throttle) {
    CpuSpec c;
    c.model = std::move(model);
    c.vendor = vendor;
    c.year = year;
    c.cores = cores;
    c.tdp_w = tdp;
    c.idle_w = idle;
    c.sustained_gflops_per_core = gflops_core;
    c.active_watts_per_core = watts_core;
    c.mem_bw_gbs = bw;
    c.peak_score_per_thread = peak_score;
    c.allcore_throttle = throttle;
    return c;
}

std::vector<CatalogEntry> build_catalog() {
    std::vector<CatalogEntry> entries;

    // ---------------- Chameleon CPU nodes (Tables 1, 4; Fig. 4) -----------
    // Model constants calibrated to Table 1: runtimes 5.20/4.68/4.60/5.65 s
    // and energies 18.3/35.8/19.8/16.8 J for the Cholesky task.
    // Peak scores are PassMark-like single-thread ratings [paper ref 39].
    {
        CatalogEntry e;
        e.id = CatalogId::Desktop;
        e.node.name = "Desktop";
        e.node.cpu = make_cpu("Intel Core i7-10700", Vendor::Intel, 2020, 16, 65.0,
                              6.51, 10.0, 3.52, 40.0, 2900.0, 0.55);
        e.node.sockets = 1;
        e.node.dram_gb = 64.0;
        e.node.ssd_tb = 1.0;
        e.node.year_deployed = 2021;  // age 3 at the 2024 measurements (Table 4)
        e.node.node_idle_w = 6.51;
        e.platform_overhead_kg = 160.0;
        e.reference_year = 2024;
        e.avg_carbon_intensity = 454.0;
        e.pue = 1.0;  // a desk-side machine has no facility overhead
        e.grid_region = "NO-NO2";  // Fig-7 low-carbon assignment (§5.6)
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::CascadeLake;
        e.node.name = "Cascade Lake";
        e.node.cpu = make_cpu("Intel Xeon 6248R", Vendor::Intel, 2019, 24, 205.0,
                              68.0, 11.1, 7.65, 140.0, 2250.0, 0.18);
        e.node.sockets = 2;
        e.node.dram_gb = 384.0;
        e.node.ssd_tb = 2.0;
        e.node.year_deployed = 2020;  // age 4
        e.node.node_idle_w = 136.0;
        e.platform_overhead_kg = 200.0;
        e.reference_year = 2024;
        e.avg_carbon_intensity = 454.0;
        e.pue = 1.25;
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::IceLake;
        e.node.name = "Ice Lake";
        e.node.cpu = make_cpu("Intel Xeon Platinum 8380", Vendor::Intel, 2021, 40,
                              270.0, 90.0, 11.3, 4.30, 200.0, 2450.0, 0.15);
        e.node.sockets = 2;
        e.node.dram_gb = 1024.0;
        e.node.ssd_tb = 2.0;
        e.node.year_deployed = 2022;  // age 2
        e.node.node_idle_w = 180.0;
        e.platform_overhead_kg = 620.0;
        e.reference_year = 2024;
        e.avg_carbon_intensity = 454.0;
        e.pue = 1.25;
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::Zen3;
        e.node.name = "Zen3";
        e.node.cpu = make_cpu("AMD EPYC 7763", Vendor::Amd, 2021, 64, 280.0, 95.0,
                              9.2, 2.97, 200.0, 2550.0, 0.15);
        e.node.sockets = 2;
        e.node.dram_gb = 1024.0;
        e.node.ssd_tb = 4.0;
        e.node.year_deployed = 2023;  // age 1
        e.node.node_idle_w = 190.0;
        e.platform_overhead_kg = 1450.0;
        e.reference_year = 2024;
        e.avg_carbon_intensity = 454.0;
        e.pue = 1.25;
        entries.push_back(e);
    }

    // ---------------- Simulation machines (Table 5) ------------------------
    // FASTER: newest and most energy-efficient per flop; high idle (205 W)
    // and by far the highest embodied carbon rate (105.2 g/h at age 0).
    {
        CatalogEntry e;
        e.id = CatalogId::Faster;
        e.node.name = "FASTER";
        e.node.cpu = make_cpu("Intel Xeon 8352Y", Vendor::Intel, 2021, 32, 205.0,
                              102.5, 8.5, 2.9, 200.0, 2400.0, 0.10);
        e.node.sockets = 2;
        e.node.dram_gb = 256.0;
        e.node.ssd_tb = 3.84;
        e.node.year_deployed = 2023;
        e.node.node_idle_w = 205.0;
        // Composable-infrastructure share (PCIe fabric, liquid cooling plant)
        // dominates FASTER's per-node embodied estimate.
        e.platform_overhead_kg = 1270.0;
        e.reference_year = 2023;  // simulation starts January 2023
        e.avg_carbon_intensity = 389.0;
        e.pue = 1.30;
        e.grid_region = "CA-ON";
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::InstitutionalCluster;
        e.node.name = "IC";
        e.node.cpu = make_cpu("Intel Xeon 6248R", Vendor::Intel, 2019, 24, 205.0,
                              68.0, 11.1, 7.65, 140.0, 2250.0, 0.18);
        e.node.sockets = 2;
        e.node.dram_gb = 384.0;
        e.node.ssd_tb = 1.0;
        e.node.year_deployed = 2021;
        e.node.node_idle_w = 136.0;
        e.platform_overhead_kg = 200.0;
        e.reference_year = 2023;
        e.avg_carbon_intensity = 454.0;
        e.pue = 1.40;  // institutional machine-room cooling
        e.grid_region = "AU-SA";
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::Theta;
        e.node.name = "Theta";
        // Slow, hot-per-flop many-core node: neither cheapest nor most
        // efficient for most tasks, but with negligible embodied rate by 2023.
        e.node.cpu = make_cpu("Intel KNL 7320", Vendor::Intel, 2016, 64, 215.0,
                              110.0, 3.0, 3.2, 90.0, 1100.0, 0.05);
        e.node.sockets = 1;
        e.node.dram_gb = 208.0;  // 192 GB DDR4 + 16 GB MCDRAM
        e.node.ssd_tb = 0.128;
        e.node.year_deployed = 2017;
        e.node.node_idle_w = 110.0;
        e.platform_overhead_kg = 560.0;
        e.reference_year = 2023;
        e.avg_carbon_intensity = 502.0;
        e.pue = 1.25;
        e.grid_region = "DK-BHM";
        entries.push_back(e);
    }

    // ---------------- GPU hosts (Tables 2, 3) ------------------------------
    // GFlop/s are manufacturer-reported (paper Table 2). Embodied per-GPU and
    // host overheads are calibrated so the DDB carbon rates land near the
    // paper's 8.5 / 19 / 87 g/h (1 GPU) at the 2023 reference year.
    auto gpu_host_cpu = make_cpu("Intel Xeon host", Vendor::Intel, 2019, 16, 150.0,
                                 60.0, 9.0, 4.0, 120.0, 2000.0, 0.12);
    {
        CatalogEntry e;
        e.id = CatalogId::P100Node;
        e.node.name = "P100";
        e.node.cpu = gpu_host_cpu;
        e.node.sockets = 2;
        e.node.gpu_count = 2;  // Grid'5000 P100 hosts carry two devices
        e.node.gpu = GpuSpec{"Nvidia P100", 2018, 6700.0, 250.0, 28.0, 16.0, 11.0,
                             280.0};
        e.node.dram_gb = 512.0;
        e.node.ssd_tb = 1.0;
        e.node.year_deployed = 2018;
        e.platform_overhead_kg = 1160.0;
        e.reference_year = 2023;
        e.avg_carbon_intensity = 53.0;  // Grid'5000 (France, nuclear-heavy)
        e.pue = 1.35;
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::V100Node;
        e.node.name = "V100";
        e.node.cpu = gpu_host_cpu;
        e.node.sockets = 2;
        e.node.gpu_count = 8;
        e.node.gpu = GpuSpec{"Nvidia V100", 2019, 14000.0, 250.0, 45.0, 32.0, 13.0,
                             220.0};
        e.node.dram_gb = 512.0;
        e.node.ssd_tb = 2.0;
        e.node.year_deployed = 2019;
        e.platform_overhead_kg = 1850.0;
        e.reference_year = 2023;
        e.avg_carbon_intensity = 53.0;
        e.pue = 1.35;
        entries.push_back(e);
    }
    {
        CatalogEntry e;
        e.id = CatalogId::A100Node;
        e.node.name = "A100";
        e.node.cpu = gpu_host_cpu;
        e.node.sockets = 2;
        e.node.gpu_count = 8;
        e.node.gpu = GpuSpec{"Nvidia A100", 2021, 18000.0, 400.0, 95.0, 40.0, 22.0,
                             400.0};
        e.node.dram_gb = 1024.0;
        e.node.ssd_tb = 4.0;
        e.node.year_deployed = 2021;
        e.platform_overhead_kg = 2850.0;
        e.reference_year = 2023;
        e.avg_carbon_intensity = 53.0;
        e.pue = 1.35;
        entries.push_back(e);
    }

    return entries;
}

}  // namespace

const std::vector<CatalogEntry>& catalog() {
    static const std::vector<CatalogEntry> entries = build_catalog();
    return entries;
}

const CatalogEntry& find(CatalogId id) {
    for (const auto& e : catalog()) {
        if (e.id == id) return e;
    }
    throw ga::util::PreconditionError("catalog: unknown machine id");
}

const CatalogEntry& find(std::string_view name) {
    for (const auto& e : catalog()) {
        if (e.node.name == name) return e;
    }
    throw ga::util::RuntimeError("catalog: no machine named '" + std::string(name) +
                                 "'");
}

std::vector<CatalogEntry> chameleon_cpu_nodes() {
    return {find(CatalogId::Desktop), find(CatalogId::CascadeLake),
            find(CatalogId::IceLake), find(CatalogId::Zen3)};
}

std::vector<CatalogEntry> simulation_machines() {
    return {find(CatalogId::Faster), find(CatalogId::Desktop),
            find(CatalogId::InstitutionalCluster), find(CatalogId::Theta)};
}

std::vector<CatalogEntry> gpu_nodes() {
    return {find(CatalogId::P100Node), find(CatalogId::V100Node),
            find(CatalogId::A100Node)};
}

}  // namespace ga::machine
