// CPU execution model: converts an application's work profile into
// (runtime, energy) on a given node.
//
// The paper measured real applications with RAPL on four physical CPU nodes
// (Table 1, Fig. 4). We do not have that hardware, so the substitution is a
// roofline + Amdahl model whose per-machine constants (sustained GFlop/s per
// core, incremental watts per busy core, memory bandwidth) are calibrated to
// the paper's published (runtime, energy) pairs. Kernels in ga_kernels are
// *really executed* to produce their work profiles (flop and byte counts are
// counted by instrumentation, not assumed), and this model maps a profile to
// any catalog machine.
#pragma once

#include "machine/spec.hpp"

namespace ga::machine {

/// Machine-independent description of a computation, measured by the
/// instrumented kernels.
struct WorkProfile {
    double flops = 0.0;              ///< floating-point operations
    double mem_bytes = 0.0;          ///< bytes moved to/from DRAM
    double parallel_fraction = 0.95; ///< Amdahl-parallelizable share
};

/// Model output for one (profile, node, cores) combination.
struct ExecutionEstimate {
    double seconds = 0.0;
    double joules = 0.0;       ///< task-attributed (active) energy, RAPL-style
    double avg_watts = 0.0;    ///< joules / seconds
    double activity = 0.0;     ///< 0..1 compute-intensity factor
    double idle_share_j = 0.0; ///< node idle energy attributable to the
                               ///< provisioned cores (whole-job accounting)
};

/// Options controlling the power-activity mapping.
struct CpuPerfOptions {
    /// Activity (fraction of the per-core active power actually drawn) for a
    /// fully memory-bound task; compute-bound tasks draw 1.0.
    double memory_bound_activity = 0.55;
};

/// Deterministic roofline/Amdahl execution model.
class CpuPerfModel {
public:
    explicit CpuPerfModel(CpuPerfOptions options = CpuPerfOptions{}) noexcept
        : options_(options) {}

    /// Estimates runtime and energy for `profile` on `node` using
    /// `cores_used` cores (1 <= cores_used <= node.total_cores()).
    [[nodiscard]] ExecutionEstimate execute(const WorkProfile& profile,
                                            const NodeSpec& node,
                                            int cores_used) const;

    /// Effective energy cost of one double-precision flop on `node` for a
    /// fully compute-bound task (joules/flop) — used to rank machine
    /// efficiency in tests.
    [[nodiscard]] static double joules_per_flop(const NodeSpec& node) noexcept;

private:
    CpuPerfOptions options_;
};

}  // namespace ga::machine
