// Sweep-result serialization: scenario labels + `SimResult` to JSON and
// CSV, with every double in its shortest round-trip form, so serialized
// results deserialize bit-exactly and golden files diff cleanly.
//
// The JSON document is deterministic — serializing the same outcomes twice
// yields the same bytes — which is what the golden-run CI check and the
// `ga-sim` reproducibility contract (parallel == serial == golden) pin.
//
// Per-job finish times are omitted by default (they dominate the payload at
// paper scale); pass `include_finish_times` to keep them. The CSV form
// carries the scalar fields only — per-machine job counts and per-currency
// spend live in the JSON form, whose maps serialize in sorted key order.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "sim/sweep.hpp"

namespace ga::io {

/// One serialized row: the scenario label and its result. (The full
/// `ScenarioSpec` options are not round-tripped — the scenario *file* is
/// the canonical source of the grid; results reference it by label.)
struct ResultRow {
    std::string label;
    ga::sim::SimResult result;
};

/// Serialization switches.
struct ResultWriteOptions {
    bool include_finish_times = false;
    /// Name echoed into the document header ("" omits it).
    std::string scenario_name;
};

/// {"scenario": ..., "results": [{"label": ..., <SimResult fields>}, ...]}.
[[nodiscard]] JsonValue results_to_json(
    std::span<const ga::sim::SweepOutcome> outcomes,
    const ResultWriteOptions& options = {});

/// `write_json(results_to_json(...))` — the `ga-sim --out json` payload.
[[nodiscard]] std::string results_to_json_text(
    std::span<const ga::sim::SweepOutcome> outcomes,
    const ResultWriteOptions& options = {});

/// Scalar columns only: label, work_core_hours, jobs_completed,
/// jobs_skipped, total_cost, energy_mwh, operational_carbon_kg,
/// attributed_carbon_kg, makespan_s. Doubles in shortest round-trip form.
[[nodiscard]] std::string results_to_csv(
    std::span<const ga::sim::SweepOutcome> outcomes);

/// Inverse of `results_to_json`: rows in document order, doubles
/// bit-identical to the serialized values. Throws RuntimeError naming the
/// offending path on schema violations.
[[nodiscard]] std::vector<ResultRow> results_from_json(const JsonValue& root);

}  // namespace ga::io
