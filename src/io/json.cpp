#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/error.hpp"

namespace ga::io {

using ga::util::RuntimeError;

std::string_view kind_name(JsonValue::Kind kind) noexcept {
    switch (kind) {
        case JsonValue::Kind::Null: return "null";
        case JsonValue::Kind::Bool: return "bool";
        case JsonValue::Kind::Number: return "number";
        case JsonValue::Kind::String: return "string";
        case JsonValue::Kind::Array: return "array";
        case JsonValue::Kind::Object: return "object";
    }
    return "unknown";
}

namespace {

[[noreturn]] void throw_kind(std::string_view expected, JsonValue::Kind actual) {
    throw RuntimeError("json: expected " + std::string(expected) + ", got " +
                       std::string(kind_name(actual)));
}

}  // namespace

bool JsonValue::as_bool() const {
    if (!is_bool()) throw_kind("bool", kind());
    return std::get<bool>(value_);
}

double JsonValue::as_number() const {
    if (!is_number()) throw_kind("number", kind());
    return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) throw_kind("string", kind());
    return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
    if (!is_array()) throw_kind("array", kind());
    return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
    if (!is_object()) throw_kind("object", kind());
    return std::get<Object>(value_);
}

JsonValue::Array& JsonValue::as_array() {
    if (!is_array()) throw_kind("array", kind());
    return std::get<Array>(value_);
}

JsonValue::Object& JsonValue::as_object() {
    if (!is_object()) throw_kind("object", kind());
    return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : std::get<Object>(value_)) {
        if (k == key) return &v;
    }
    return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const JsonValue* found = find(key);
    if (found == nullptr) {
        throw RuntimeError("json: missing key \"" + std::string(key) + "\"");
    }
    return *found;
}

void JsonValue::set(std::string_view key, JsonValue value) {
    if (is_null()) value_ = Object{};
    auto& object = as_object();
    for (auto& [k, v] : object) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    object.emplace_back(std::string(key), std::move(value));
}

// ----------------------------------------------------------------- parser

namespace {

/// Maximum container nesting the parser accepts. The parser (and the DOM's
/// destructor) recurse per level, so unbounded nesting would let a hostile
/// document ("[[[[…") overflow the stack; 256 is far beyond any legitimate
/// scenario or bench file.
constexpr std::size_t kMaxNestingDepth = 256;

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        skip_whitespace();
        JsonValue value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        // 1-based line/column of the current position.
        std::size_t line = 1;
        std::size_t column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw RuntimeError("json parse error at line " + std::to_string(line) +
                           ", column " + std::to_string(column) + ": " +
                           message);
    }

    [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

    void skip_whitespace() noexcept {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    void expect(char c) {
        if (eof() || peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue parse_value() {
        if (eof()) fail("unexpected end of input");
        switch (peek()) {
            case 'n':
                if (!consume_literal("null")) fail("invalid literal");
                return JsonValue(nullptr);
            case 't':
                if (!consume_literal("true")) fail("invalid literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("invalid literal");
                return JsonValue(false);
            case '"': return JsonValue(parse_string());
            case '[': return parse_array();
            case '{': return parse_object();
            default: return parse_number();
        }
    }

    JsonValue parse_number() {
        // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][-+]?[0-9]+)?.
        // std::from_chars alone is laxer (".5", "0123", "5."), so the shape
        // is validated here before conversion.
        const std::size_t start = pos_;
        const auto digit = [this] {
            return !eof() && peek() >= '0' && peek() <= '9';
        };
        if (!eof() && peek() == '-') ++pos_;
        if (!digit()) {
            pos_ = start;
            fail("expected a value");
        }
        if (peek() == '0') {
            ++pos_;
            if (digit()) {
                pos_ = start;
                fail("malformed number (leading zero)");
            }
        } else {
            while (digit()) ++pos_;
        }
        if (!eof() && peek() == '.') {
            ++pos_;
            if (!digit()) {
                pos_ = start;
                fail("malformed number (digit required after '.')");
            }
            while (digit()) ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
            if (!digit()) {
                pos_ = start;
                fail("malformed number (digit required in exponent)");
            }
            while (digit()) ++pos_;
        }
        double value = 0.0;
        const char* first = text_.data() + start;
        const char* last = text_.data() + pos_;
        const auto [end, ec] = std::from_chars(first, last, value);
        if (ec != std::errc{} || end != last) {
            pos_ = start;
            fail("malformed number");
        }
        return JsonValue(value);
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (eof()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (eof()) fail("unterminated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': append_unicode_escape(out); break;
                default: fail("invalid escape sequence");
            }
        }
    }

    std::uint32_t parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        std::uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                fail("invalid hex digit in \\u escape");
            }
        }
        return code;
    }

    void append_unicode_escape(std::string& out) {
        std::uint32_t code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
                pos_ += 2;
                const std::uint32_t low = parse_hex4();
                if (low < 0xDC00 || low > 0xDFFF) {
                    fail("invalid low surrogate in \\u escape pair");
                }
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
                fail("unpaired surrogate in \\u escape");
            }
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    void enter_container() {
        if (++depth_ > kMaxNestingDepth) {
            fail("nesting deeper than " + std::to_string(kMaxNestingDepth) +
                 " levels");
        }
    }

    JsonValue parse_array() {
        expect('[');
        enter_container();
        JsonValue::Array array;
        skip_whitespace();
        if (!eof() && peek() == ']') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(array));
        }
        while (true) {
            skip_whitespace();
            array.push_back(parse_value());
            skip_whitespace();
            if (eof()) fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']') {
                --depth_;
                return JsonValue(std::move(array));
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    JsonValue parse_object() {
        expect('{');
        enter_container();
        JsonValue::Object object;
        skip_whitespace();
        if (!eof() && peek() == '}') {
            ++pos_;
            --depth_;
            return JsonValue(std::move(object));
        }
        while (true) {
            skip_whitespace();
            if (eof() || peek() != '"') fail("expected object key string");
            std::string key = parse_string();
            for (const auto& [existing, value] : object) {
                if (existing == key) fail("duplicate key \"" + key + "\"");
            }
            skip_whitespace();
            expect(':');
            skip_whitespace();
            object.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            if (eof()) fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}') {
                --depth_;
                return JsonValue(std::move(object));
            }
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
    return Parser(text).parse_document();
}

JsonValue load_json_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    if (!in) throw RuntimeError("json: cannot open '" + path.string() + "'");
    std::ostringstream os;
    os << in.rdbuf();
    try {
        return parse_json(os.str());
    } catch (const RuntimeError& e) {
        throw RuntimeError(path.string() + ": " + e.what());
    }
}

// ----------------------------------------------------------------- writer

std::string format_double(double v) {
    if (!std::isfinite(v)) {
        throw RuntimeError("json: cannot serialize non-finite number");
    }
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc{}) {
        throw RuntimeError("json: number formatting failed");
    }
    return std::string(buf, end);
}

namespace {

void write_escaped_string(std::string& out, std::string_view s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void write_value(std::string& out, const JsonValue& value, int indent,
                 int depth) {
    const auto newline_indent = [&out, indent](int d) {
        if (indent <= 0) return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };
    switch (value.kind()) {
        case JsonValue::Kind::Null: out += "null"; break;
        case JsonValue::Kind::Bool: out += value.as_bool() ? "true" : "false"; break;
        case JsonValue::Kind::Number: out += format_double(value.as_number()); break;
        case JsonValue::Kind::String: write_escaped_string(out, value.as_string()); break;
        case JsonValue::Kind::Array: {
            const auto& array = value.as_array();
            if (array.empty()) {
                out += "[]";
                break;
            }
            out.push_back('[');
            for (std::size_t i = 0; i < array.size(); ++i) {
                if (i != 0) out.push_back(',');
                newline_indent(depth + 1);
                write_value(out, array[i], indent, depth + 1);
            }
            newline_indent(depth);
            out.push_back(']');
            break;
        }
        case JsonValue::Kind::Object: {
            const auto& object = value.as_object();
            if (object.empty()) {
                out += "{}";
                break;
            }
            out.push_back('{');
            bool first = true;
            for (const auto& [key, member] : object) {
                if (!first) out.push_back(',');
                first = false;
                newline_indent(depth + 1);
                write_escaped_string(out, key);
                out.push_back(':');
                if (indent > 0) out.push_back(' ');
                write_value(out, member, indent, depth + 1);
            }
            newline_indent(depth);
            out.push_back('}');
            break;
        }
    }
}

}  // namespace

std::string write_json(const JsonValue& value, int indent) {
    std::string out;
    write_value(out, value, indent, 0);
    if (indent > 0) out.push_back('\n');
    return out;
}

}  // namespace ga::io
