#include "io/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"
#include "util/spec.hpp"

namespace ga::io {

using ga::util::RuntimeError;

namespace {

// Doubles can represent integers exactly only up to 2^53; seeds and counts
// beyond that would silently round through the JSON number type.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

[[noreturn]] void fail(const std::string& path, const std::string& why) {
    throw RuntimeError("scenario: \"" + path + "\": " + why);
}

[[noreturn]] void fail_type(const std::string& path, std::string_view expected,
                            const JsonValue& actual) {
    fail(path, "expected " + std::string(expected) + ", got " +
                   std::string(kind_name(actual.kind())));
}

std::string join(const std::vector<std::string>& names) {
    std::string out;
    for (const auto& name : names) {
        if (!out.empty()) out += ", ";
        out += name;
    }
    return out;
}

/// Rejects keys outside `allowed` (order: the schema's documentation
/// order, echoed in the diagnostic).
void check_keys(const JsonValue& object, const std::string& path,
                const std::vector<std::string>& allowed) {
    for (const auto& [key, value] : object.as_object()) {
        if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
            fail(path.empty() ? key : path + "." + key,
                 "unknown key (allowed here: " + join(allowed) + ")");
        }
    }
}

const JsonValue& expect_object(const JsonValue& v, const std::string& path) {
    if (!v.is_object()) fail_type(path, "object", v);
    return v;
}

double get_number(const JsonValue& v, const std::string& path) {
    if (!v.is_number()) fail_type(path, "number", v);
    return v.as_number();
}

bool get_bool(const JsonValue& v, const std::string& path) {
    if (!v.is_bool()) fail_type(path, "bool", v);
    return v.as_bool();
}

std::string get_string(const JsonValue& v, const std::string& path) {
    if (!v.is_string()) fail_type(path, "string", v);
    return v.as_string();
}

/// A non-negative integer (counts, indices, seeds).
std::uint64_t get_uint(const JsonValue& v, const std::string& path) {
    const double n = get_number(v, path);
    if (!(n >= 0.0) || n > kMaxExactInteger || std::trunc(n) != n) {
        fail(path, "expected a non-negative integer, got " +
                       format_double(n));
    }
    return static_cast<std::uint64_t>(n);
}

const JsonValue::Array& get_array(const JsonValue& v, const std::string& path) {
    if (!v.is_array()) fail_type(path, "array", v);
    return v.as_array();
}

/// Required object member; the diagnostic names the full missing path.
const JsonValue& require_key(const JsonValue& v, const char* key,
                             const std::string& path) {
    const JsonValue* found = v.find(key);
    if (found == nullptr) fail(path + "." + key, "required key is missing");
    return *found;
}

// ------------------------------------------------------------------ specs

/// A policy/accountant spec entry: either a "Name(k=v,...)" label string
/// or {"name": ..., "params": {...}}.
ga::util::ParsedSpec get_spec(const JsonValue& v, const std::string& path) {
    if (v.is_string()) {
        try {
            return ga::util::parse_spec(v.as_string());
        } catch (const RuntimeError& e) {
            fail(path, e.what());
        }
    }
    if (!v.is_object()) fail_type(path, "spec (label string or object)", v);
    check_keys(v, path, {"name", "params"});
    ga::util::ParsedSpec spec;
    spec.name = get_string(require_key(v, "name", path), path + ".name");
    if (spec.name.empty()) fail(path + ".name", "empty name");
    if (const JsonValue* params = v.find("params")) {
        expect_object(*params, path + ".params");
        for (const auto& [key, value] : params->as_object()) {
            spec.params[key] = get_number(value, path + ".params." + key);
        }
    }
    return spec;
}

ga::sim::PolicySpec get_policy_spec(const JsonValue& v,
                                    const std::string& path) {
    auto parsed = get_spec(v, path);
    if (!ga::sim::PolicyRegistry::global().contains(parsed.name)) {
        fail(path, "unknown policy \"" + parsed.name + "\" (registered: " +
                       join(ga::sim::PolicyRegistry::global().names()) + ")");
    }
    return ga::sim::PolicySpec{std::move(parsed.name),
                               std::move(parsed.params)};
}

ga::acct::AccountantSpec get_accountant_spec(const JsonValue& v,
                                             const std::string& path) {
    auto parsed = get_spec(v, path);
    if (!ga::acct::AccountantRegistry::global().contains(parsed.name)) {
        fail(path,
             "unknown accountant \"" + parsed.name + "\" (registered: " +
                 join(ga::acct::AccountantRegistry::global().names()) + ")");
    }
    return ga::acct::AccountantSpec{std::move(parsed.name),
                                    std::move(parsed.params)};
}

// ------------------------------------------------------------------ enums

std::vector<std::string> policy_names() {
    std::vector<std::string> names;
    for (const auto p : ga::sim::all_policies()) {
        names.emplace_back(ga::sim::to_string(p));
    }
    return names;
}

std::vector<std::string> method_names() {
    std::vector<std::string> names;
    for (const auto m : ga::acct::all_methods()) {
        names.emplace_back(ga::acct::to_string(m));
    }
    return names;
}

ga::sim::Policy get_policy_name(const JsonValue& v, const std::string& path) {
    const std::string name = get_string(v, path);
    const auto policy = ga::sim::policy_from_string(name);
    if (!policy.has_value()) {
        fail(path, "unknown policy name \"" + name +
                       "\" (one of: " + join(policy_names()) + ")");
    }
    return *policy;
}

ga::acct::Method get_method_name(const JsonValue& v, const std::string& path) {
    const std::string name = get_string(v, path);
    const auto method = ga::acct::method_from_string(name);
    if (!method.has_value()) {
        fail(path, "unknown pricing method \"" + name +
                       "\" (one of: " + join(method_names()) + ")");
    }
    return *method;
}

// ---------------------------------------------------------------- options

ga::sim::ClusterOutage get_outage(const JsonValue& v, const std::string& path) {
    expect_object(v, path);
    check_keys(v, path, {"cluster", "at_s", "nodes_lost"});
    ga::sim::ClusterOutage outage;
    outage.cluster = static_cast<std::size_t>(
        get_uint(require_key(v, "cluster", path), path + ".cluster"));
    outage.at_s = get_number(require_key(v, "at_s", path), path + ".at_s");
    outage.nodes_lost = static_cast<int>(std::min<std::uint64_t>(
        get_uint(require_key(v, "nodes_lost", path), path + ".nodes_lost"),
        static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
    return outage;
}

ga::sim::CurrencyBudget get_currency_budget(const JsonValue& v,
                                            const std::string& path) {
    expect_object(v, path);
    check_keys(v, path, {"currency", "accountant", "budget"});
    ga::sim::CurrencyBudget cb;
    cb.currency = get_string(require_key(v, "currency", path), path + ".currency");
    if (cb.currency.empty()) fail(path + ".currency", "empty currency name");
    cb.accountant = get_accountant_spec(require_key(v, "accountant", path),
                                        path + ".accountant");
    cb.budget = get_number(require_key(v, "budget", path), path + ".budget");
    return cb;
}

ga::sim::SimOptions get_options(const JsonValue& v, const std::string& path) {
    expect_object(v, path);
    check_keys(v, path,
               {"policy", "policy_spec", "pricing", "accountant_spec",
                "currency_budgets", "budget", "mixed_threshold",
                "regional_grids", "grid_seed", "arrival_compression",
                "outage"});
    ga::sim::SimOptions options;
    if (const JsonValue* f = v.find("policy")) {
        options.policy = get_policy_name(*f, path + ".policy");
    }
    if (const JsonValue* f = v.find("policy_spec")) {
        options.policy_spec = get_policy_spec(*f, path + ".policy_spec");
    }
    if (const JsonValue* f = v.find("pricing")) {
        options.pricing = get_method_name(*f, path + ".pricing");
    }
    if (const JsonValue* f = v.find("accountant_spec")) {
        options.accountant_spec =
            get_accountant_spec(*f, path + ".accountant_spec");
    }
    if (const JsonValue* f = v.find("currency_budgets")) {
        const auto& entries = get_array(*f, path + ".currency_budgets");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            options.currency_budgets.push_back(get_currency_budget(
                entries[i],
                path + ".currency_budgets[" + std::to_string(i) + "]"));
        }
    }
    if (const JsonValue* f = v.find("budget")) {
        options.budget = get_number(*f, path + ".budget");
    }
    if (const JsonValue* f = v.find("mixed_threshold")) {
        options.mixed_threshold = get_number(*f, path + ".mixed_threshold");
    }
    if (const JsonValue* f = v.find("regional_grids")) {
        options.regional_grids = get_bool(*f, path + ".regional_grids");
    }
    if (const JsonValue* f = v.find("grid_seed")) {
        options.grid_seed = get_uint(*f, path + ".grid_seed");
    }
    if (const JsonValue* f = v.find("arrival_compression")) {
        options.arrival_compression =
            get_number(*f, path + ".arrival_compression");
    }
    if (const JsonValue* f = v.find("outage")) {
        if (!f->is_null()) options.outage = get_outage(*f, path + ".outage");
    }
    return options;
}

// ------------------------------------------------------------------- grid

void load_grid_axes(const JsonValue& v, const std::string& path,
                    ga::sim::SweepGrid& grid) {
    expect_object(v, path);
    check_keys(v, path,
               {"policies", "policy_specs", "pricings", "accountant_specs",
                "budgets", "mixed_thresholds", "regional_grids", "grid_seeds",
                "arrival_compressions", "outages"});
    const auto element = [&path](const std::string& axis, std::size_t i) {
        return path + "." + axis + "[" + std::to_string(i) + "]";
    };
    if (const JsonValue* f = v.find("policies")) {
        const auto& items = get_array(*f, path + ".policies");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.policies.push_back(
                get_policy_name(items[i], element("policies", i)));
        }
    }
    if (const JsonValue* f = v.find("policy_specs")) {
        const auto& items = get_array(*f, path + ".policy_specs");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.policy_specs.push_back(
                get_policy_spec(items[i], element("policy_specs", i)));
        }
    }
    if (const JsonValue* f = v.find("pricings")) {
        const auto& items = get_array(*f, path + ".pricings");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.pricings.push_back(
                get_method_name(items[i], element("pricings", i)));
        }
    }
    if (const JsonValue* f = v.find("accountant_specs")) {
        const auto& items = get_array(*f, path + ".accountant_specs");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.accountant_specs.push_back(
                get_accountant_spec(items[i], element("accountant_specs", i)));
        }
    }
    if (const JsonValue* f = v.find("budgets")) {
        const auto& items = get_array(*f, path + ".budgets");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.budgets.push_back(
                get_number(items[i], element("budgets", i)));
        }
    }
    if (const JsonValue* f = v.find("mixed_thresholds")) {
        const auto& items = get_array(*f, path + ".mixed_thresholds");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.mixed_thresholds.push_back(
                get_number(items[i], element("mixed_thresholds", i)));
        }
    }
    if (const JsonValue* f = v.find("regional_grids")) {
        const auto& items = get_array(*f, path + ".regional_grids");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.regional_grids.push_back(
                get_bool(items[i], element("regional_grids", i)));
        }
    }
    if (const JsonValue* f = v.find("grid_seeds")) {
        const auto& items = get_array(*f, path + ".grid_seeds");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.grid_seeds.push_back(
                get_uint(items[i], element("grid_seeds", i)));
        }
    }
    if (const JsonValue* f = v.find("arrival_compressions")) {
        const auto& items = get_array(*f, path + ".arrival_compressions");
        for (std::size_t i = 0; i < items.size(); ++i) {
            grid.arrival_compressions.push_back(
                get_number(items[i], element("arrival_compressions", i)));
        }
    }
    if (const JsonValue* f = v.find("outages")) {
        const auto& items = get_array(*f, path + ".outages");
        for (std::size_t i = 0; i < items.size(); ++i) {
            const std::string p = element("outages", i);
            if (items[i].is_null()) {
                grid.outages.emplace_back(std::nullopt);
            } else {
                grid.outages.emplace_back(get_outage(items[i], p));
            }
        }
    }
}

ga::workload::TraceOptions get_workload(const JsonValue& v,
                                        const std::string& path) {
    expect_object(v, path);
    check_keys(v, path,
               {"base_jobs", "repetitions", "users", "span_days", "seed",
                "arrival", "diurnal_peak_hour", "diurnal_amplitude",
                "weekend_factor", "burst_fraction", "burst_width_s",
                "burst_mean_jobs"});
    ga::workload::TraceOptions options;
    if (const JsonValue* f = v.find("base_jobs")) {
        options.base_jobs =
            static_cast<std::size_t>(get_uint(*f, path + ".base_jobs"));
        if (options.base_jobs == 0) fail(path + ".base_jobs", "must be >= 1");
    }
    if (const JsonValue* f = v.find("repetitions")) {
        const std::uint64_t reps = get_uint(*f, path + ".repetitions");
        if (reps == 0 ||
            reps > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
            fail(path + ".repetitions", "must be a positive int");
        }
        options.repetitions = static_cast<int>(reps);
    }
    if (const JsonValue* f = v.find("users")) {
        options.users = static_cast<std::size_t>(get_uint(*f, path + ".users"));
        if (options.users == 0) fail(path + ".users", "must be >= 1");
    }
    if (const JsonValue* f = v.find("span_days")) {
        options.span_days = get_number(*f, path + ".span_days");
        if (!(options.span_days > 0.0)) {
            fail(path + ".span_days", "must be > 0");
        }
    }
    if (const JsonValue* f = v.find("seed")) {
        options.seed = get_uint(*f, path + ".seed");
    }
    if (const JsonValue* f = v.find("arrival")) {
        const std::string name = get_string(*f, path + ".arrival");
        const auto arrival = ga::workload::arrival_from_string(name);
        if (!arrival.has_value()) {
            fail(path + ".arrival", "unknown arrival process \"" + name +
                                        "\" (known: uniform, diurnal)");
        }
        options.arrival = *arrival;
    }
    if (const JsonValue* f = v.find("diurnal_peak_hour")) {
        options.diurnal_peak_hour = get_number(*f, path + ".diurnal_peak_hour");
        if (!(options.diurnal_peak_hour >= 0.0 &&
              options.diurnal_peak_hour < 24.0)) {
            fail(path + ".diurnal_peak_hour", "must be in [0, 24)");
        }
    }
    if (const JsonValue* f = v.find("diurnal_amplitude")) {
        options.diurnal_amplitude = get_number(*f, path + ".diurnal_amplitude");
        if (!(options.diurnal_amplitude >= 0.0 &&
              options.diurnal_amplitude < 1.0)) {
            fail(path + ".diurnal_amplitude", "must be in [0, 1)");
        }
    }
    if (const JsonValue* f = v.find("weekend_factor")) {
        options.weekend_factor = get_number(*f, path + ".weekend_factor");
        if (!(options.weekend_factor > 0.0 && options.weekend_factor <= 1.0)) {
            fail(path + ".weekend_factor", "must be in (0, 1]");
        }
    }
    if (const JsonValue* f = v.find("burst_fraction")) {
        options.burst_fraction = get_number(*f, path + ".burst_fraction");
        if (!(options.burst_fraction >= 0.0 && options.burst_fraction <= 1.0)) {
            fail(path + ".burst_fraction", "must be in [0, 1]");
        }
    }
    if (const JsonValue* f = v.find("burst_width_s")) {
        options.burst_width_s = get_number(*f, path + ".burst_width_s");
        if (!(options.burst_width_s > 0.0)) {
            fail(path + ".burst_width_s", "must be > 0");
        }
    }
    if (const JsonValue* f = v.find("burst_mean_jobs")) {
        options.burst_mean_jobs = get_number(*f, path + ".burst_mean_jobs");
        if (!(options.burst_mean_jobs >= 1.0)) {
            fail(path + ".burst_mean_jobs", "must be >= 1");
        }
    }
    return options;
}

// ------------------------------------------------------------- serializer

/// Integer -> JSON number, refusing values the double representation would
/// silently round (which would break the documented to_json/from_json round
/// trip — the loader rejects non-exact integers).
JsonValue uint_to_json(std::uint64_t v, const char* what) {
    if (static_cast<double>(v) > kMaxExactInteger) {
        throw RuntimeError("scenario: cannot serialize " + std::string(what) +
                           " " + std::to_string(v) +
                           ": exceeds 2^53, not exactly representable as a "
                           "JSON number");
    }
    return JsonValue(static_cast<double>(v));
}

JsonValue spec_to_json(const std::string& name,
                       const std::map<std::string, double>& params) {
    JsonValue out;
    out.set("name", name);
    if (!params.empty()) {
        JsonValue p;
        for (const auto& [key, value] : params) p.set(key, value);
        out.set("params", std::move(p));
    } else {
        out.set("params", JsonValue(JsonValue::Object{}));
    }
    return out;
}

JsonValue outage_to_json(const ga::sim::ClusterOutage& outage) {
    JsonValue out;
    out.set("cluster", uint_to_json(outage.cluster, "outage cluster"));
    out.set("at_s", outage.at_s);
    out.set("nodes_lost", outage.nodes_lost);
    return out;
}

JsonValue options_to_json(const ga::sim::SimOptions& options) {
    JsonValue out;
    out.set("policy", std::string(ga::sim::to_string(options.policy)));
    if (options.policy_spec.has_value()) {
        out.set("policy_spec", spec_to_json(options.policy_spec->name,
                                            options.policy_spec->params));
    }
    out.set("pricing", std::string(ga::acct::to_string(options.pricing)));
    if (options.accountant_spec.has_value()) {
        out.set("accountant_spec",
                spec_to_json(options.accountant_spec->name,
                             options.accountant_spec->params));
    }
    if (!options.currency_budgets.empty()) {
        JsonValue::Array budgets;
        for (const auto& cb : options.currency_budgets) {
            JsonValue entry;
            entry.set("currency", cb.currency);
            entry.set("accountant",
                      spec_to_json(cb.accountant.name, cb.accountant.params));
            entry.set("budget", cb.budget);
            budgets.push_back(std::move(entry));
        }
        out.set("currency_budgets", JsonValue(std::move(budgets)));
    }
    out.set("budget", options.budget);
    out.set("mixed_threshold", options.mixed_threshold);
    out.set("regional_grids", options.regional_grids);
    out.set("grid_seed", uint_to_json(options.grid_seed, "grid_seed"));
    out.set("arrival_compression", options.arrival_compression);
    out.set("outage", options.outage.has_value()
                          ? outage_to_json(*options.outage)
                          : JsonValue(nullptr));
    return out;
}

}  // namespace

void ScenarioFile::scale_workload(double factor) {
    GA_REQUIRE(factor > 0.0, "workload scale must be > 0");
    const double scaled =
        std::floor(static_cast<double>(workload.base_jobs) * factor);
    workload.base_jobs =
        scaled < 1.0 ? std::size_t{1} : static_cast<std::size_t>(scaled);
}

ScenarioFile scenario_from_json(const JsonValue& root) {
    if (!root.is_object()) fail_type("(document)", "object", root);
    check_keys(root, "", {"name", "description", "workload", "options", "grid"});
    ScenarioFile scenario;
    const JsonValue* name = root.find("name");
    if (name == nullptr) fail("name", "required key is missing");
    scenario.name = get_string(*name, "name");
    if (scenario.name.empty()) fail("name", "must be non-empty");
    if (const JsonValue* f = root.find("description")) {
        scenario.description = get_string(*f, "description");
    }
    if (const JsonValue* f = root.find("workload")) {
        scenario.workload = get_workload(*f, "workload");
    }
    if (const JsonValue* f = root.find("options")) {
        scenario.grid.base = get_options(*f, "options");
    }
    if (const JsonValue* f = root.find("grid")) {
        load_grid_axes(*f, "grid", scenario.grid);
    }
    return scenario;
}

ScenarioFile load_scenario_file(const std::filesystem::path& path) {
    const JsonValue document = load_json_file(path);
    try {
        return scenario_from_json(document);
    } catch (const RuntimeError& e) {
        throw RuntimeError(path.string() + ": " + e.what());
    }
}

JsonValue scenario_to_json(const ScenarioFile& scenario) {
    JsonValue out;
    out.set("name", scenario.name);
    if (!scenario.description.empty()) {
        out.set("description", scenario.description);
    }
    JsonValue workload;
    workload.set("base_jobs",
                 uint_to_json(scenario.workload.base_jobs, "base_jobs"));
    workload.set("repetitions", scenario.workload.repetitions);
    workload.set("users", uint_to_json(scenario.workload.users, "users"));
    workload.set("span_days", scenario.workload.span_days);
    workload.set("seed", uint_to_json(scenario.workload.seed, "workload seed"));
    workload.set("arrival", std::string(ga::workload::to_string(
                                scenario.workload.arrival)));
    workload.set("diurnal_peak_hour", scenario.workload.diurnal_peak_hour);
    workload.set("diurnal_amplitude", scenario.workload.diurnal_amplitude);
    workload.set("weekend_factor", scenario.workload.weekend_factor);
    workload.set("burst_fraction", scenario.workload.burst_fraction);
    workload.set("burst_width_s", scenario.workload.burst_width_s);
    workload.set("burst_mean_jobs", scenario.workload.burst_mean_jobs);
    out.set("workload", std::move(workload));
    out.set("options", options_to_json(scenario.grid.base));

    const auto& grid = scenario.grid;
    JsonValue axes{JsonValue::Object{}};  // "grid": {} when nothing is swept
    if (!grid.policies.empty()) {
        JsonValue::Array items;
        for (const auto p : grid.policies) {
            items.emplace_back(std::string(ga::sim::to_string(p)));
        }
        axes.set("policies", JsonValue(std::move(items)));
    }
    if (!grid.policy_specs.empty()) {
        JsonValue::Array items;
        for (const auto& spec : grid.policy_specs) {
            items.push_back(spec_to_json(spec.name, spec.params));
        }
        axes.set("policy_specs", JsonValue(std::move(items)));
    }
    if (!grid.pricings.empty()) {
        JsonValue::Array items;
        for (const auto m : grid.pricings) {
            items.emplace_back(std::string(ga::acct::to_string(m)));
        }
        axes.set("pricings", JsonValue(std::move(items)));
    }
    if (!grid.accountant_specs.empty()) {
        JsonValue::Array items;
        for (const auto& spec : grid.accountant_specs) {
            items.push_back(spec_to_json(spec.name, spec.params));
        }
        axes.set("accountant_specs", JsonValue(std::move(items)));
    }
    if (!grid.budgets.empty()) {
        JsonValue::Array items;
        for (const auto b : grid.budgets) items.emplace_back(b);
        axes.set("budgets", JsonValue(std::move(items)));
    }
    if (!grid.mixed_thresholds.empty()) {
        JsonValue::Array items;
        for (const auto t : grid.mixed_thresholds) items.emplace_back(t);
        axes.set("mixed_thresholds", JsonValue(std::move(items)));
    }
    if (!grid.regional_grids.empty()) {
        JsonValue::Array items;
        for (const bool r : grid.regional_grids) items.emplace_back(r);
        axes.set("regional_grids", JsonValue(std::move(items)));
    }
    if (!grid.grid_seeds.empty()) {
        JsonValue::Array items;
        for (const auto s : grid.grid_seeds) {
            items.push_back(uint_to_json(s, "grid_seeds entry"));
        }
        axes.set("grid_seeds", JsonValue(std::move(items)));
    }
    if (!grid.arrival_compressions.empty()) {
        JsonValue::Array items;
        for (const auto c : grid.arrival_compressions) items.emplace_back(c);
        axes.set("arrival_compressions", JsonValue(std::move(items)));
    }
    if (!grid.outages.empty()) {
        JsonValue::Array items;
        for (const auto& outage : grid.outages) {
            items.push_back(outage.has_value() ? outage_to_json(*outage)
                                               : JsonValue(nullptr));
        }
        axes.set("outages", JsonValue(std::move(items)));
    }
    out.set("grid", std::move(axes));
    return out;
}

}  // namespace ga::io
