// Declarative scenario files (JSON) covering the full simulation surface.
//
// A scenario file is the committed, diffable form of one `SweepGrid` plus
// the workload it runs over — every experiment in the repo (and beyond-paper
// combinations: outages, dual budgets, carbon-aware policies) expressed as
// data instead of recompiled C++. The `ga-sim` CLI (tools/) loads one,
// expands the grid, and runs it through the sweep engine.
//
// Schema (all keys optional unless noted; see README for the reference):
//
//   {
//     "name": "fig5-eba",                       // required
//     "description": "...",
//     "workload": {                              // trace generator knobs
//       "base_jobs": 71190, "repetitions": 2, "users": 400,
//       "span_days": 12.0, "seed": 2023,
//       "arrival": "uniform" | "diurnal",        // datacenter-scale arrivals
//       "diurnal_peak_hour": 14.0, "diurnal_amplitude": 0.75,
//       "weekend_factor": 0.35, "burst_fraction": 0.15,
//       "burst_width_s": 120.0, "burst_mean_jobs": 50.0
//     },
//     "options": { ... },   // SimOptions every scenario starts from
//     "grid":    { ... }    // sweep axes overriding options per point
//   }
//
// "options" carries every `SimOptions` field: "policy", "policy_spec",
// "pricing", "accountant_spec", "budget", "mixed_threshold",
// "regional_grids", "grid_seed", "arrival_compression", "outage"
// ({"cluster", "at_s", "nodes_lost"} or null), and "currency_budgets"
// ([{"currency", "accountant", "budget"}, ...]). "grid" carries every
// `SweepGrid` axis: "policies", "policy_specs", "pricings",
// "accountant_specs", "budgets", "mixed_thresholds", "regional_grids",
// "grid_seeds", "arrival_compressions", "outages". Policy/accountant specs
// are written either as a label string ("Mixed(threshold=1.5)", parsed by
// ga::util::parse_spec) or as {"name": ..., "params": {...}}; spec names
// are validated against the live registries at load time, so register
// custom strategies before loading.
//
// Loading is strict: unknown keys, wrong types, bad enum names, and
// malformed specs all throw ga::util::RuntimeError naming the offending
// path ("grid.budgets[2]", "options.outage.cluster", ...).
#pragma once

#include <filesystem>
#include <string>

#include "io/json.hpp"
#include "sim/sweep.hpp"
#include "workload/workload.hpp"

namespace ga::io {

/// One loaded scenario file: the grid (axes + base options) and the
/// workload configuration it runs over.
struct ScenarioFile {
    std::string name;
    std::string description;
    ga::workload::TraceOptions workload;
    ga::sim::SweepGrid grid;

    /// Shrinks the workload in place: `base_jobs` is scaled by `factor`
    /// (floored, minimum 1 job). The `ga-sim --scale` override.
    void scale_workload(double factor);
};

/// Maps a parsed document onto the simulation surface. Throws RuntimeError
/// with the offending path on any schema violation.
[[nodiscard]] ScenarioFile scenario_from_json(const JsonValue& root);

/// Reads, parses, and maps a scenario file; errors are prefixed with the
/// path.
[[nodiscard]] ScenarioFile load_scenario_file(
    const std::filesystem::path& path);

/// The canonical document for a scenario: every workload and options field
/// explicit, grid axes only when non-empty, specs in object form.
/// `scenario_from_json(scenario_to_json(s))` reproduces `s` exactly, and
/// the canonical form of a loaded file is byte-stable across load cycles.
[[nodiscard]] JsonValue scenario_to_json(const ScenarioFile& scenario);

}  // namespace ga::io
