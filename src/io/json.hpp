// Minimal dependency-free JSON reader/writer for the scenario I/O layer.
//
// DOM-style: `JsonValue` is a tagged union of the six JSON kinds. Objects
// preserve insertion (and file) order, so serialization is deterministic —
// writing the same DOM twice produces the same bytes, the property the
// golden-run reproducibility checks rely on. Numbers are doubles written in
// their shortest round-trip form (std::to_chars), so every double survives
// a write -> parse cycle bit-exactly.
//
// The parser is strict (RFC 8259: no comments, no trailing commas, no
// duplicate keys) and reports failures as `ga::util::RuntimeError` with
// 1-based line/column positions.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ga::io {

/// One JSON value. Default-constructed it is `null`.
class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    /// Key/value pairs in insertion order (parse preserves file order).
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double n) : value_(n) {}
    JsonValue(int n) : value_(static_cast<double>(n)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(std::string_view s) : value_(std::string(s)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    [[nodiscard]] Kind kind() const noexcept {
        return static_cast<Kind>(value_.index());
    }
    [[nodiscard]] bool is_null() const noexcept { return kind() == Kind::Null; }
    [[nodiscard]] bool is_bool() const noexcept { return kind() == Kind::Bool; }
    [[nodiscard]] bool is_number() const noexcept {
        return kind() == Kind::Number;
    }
    [[nodiscard]] bool is_string() const noexcept {
        return kind() == Kind::String;
    }
    [[nodiscard]] bool is_array() const noexcept { return kind() == Kind::Array; }
    [[nodiscard]] bool is_object() const noexcept {
        return kind() == Kind::Object;
    }

    /// Checked accessors; throw RuntimeError naming the expected and actual
    /// kinds when the value holds something else.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;
    [[nodiscard]] Array& as_array();
    [[nodiscard]] Object& as_object();

    /// Object member lookup: nullptr when absent (or not an object).
    [[nodiscard]] const JsonValue* find(std::string_view key) const;
    /// Object member lookup; throws RuntimeError naming the missing key.
    [[nodiscard]] const JsonValue& at(std::string_view key) const;
    /// Appends (or replaces) an object member, keeping insertion order.
    void set(std::string_view key, JsonValue value);

    friend bool operator==(const JsonValue&, const JsonValue&) = default;

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        value_;
};

/// Human-readable name of a kind ("number", "object", ...) for diagnostics.
[[nodiscard]] std::string_view kind_name(JsonValue::Kind kind) noexcept;

/// Parses one JSON document; the whole input must be consumed (trailing
/// whitespace allowed). Throws RuntimeError with line/column on malformed
/// input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file; parse errors are prefixed with the path.
[[nodiscard]] JsonValue load_json_file(const std::filesystem::path& path);

/// Serializes a document. `indent` > 0 pretty-prints with that many spaces
/// per level; 0 writes the compact single-line form. Deterministic: the
/// same DOM always yields the same bytes. A trailing newline is appended in
/// pretty mode (diff-friendly files). Throws RuntimeError on non-finite
/// numbers, which JSON cannot represent.
[[nodiscard]] std::string write_json(const JsonValue& value, int indent = 2);

/// Shortest decimal form of `v` that parses back to exactly `v`
/// (std::to_chars). Integral values print without a decimal point
/// ("77", not "77.0"). Shared by the JSON and CSV result writers so every
/// serialized double is round-trip exact. Throws RuntimeError on
/// non-finite values.
[[nodiscard]] std::string format_double(double v);

}  // namespace ga::io
