#include "io/results.hpp"

#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace ga::io {

using ga::util::RuntimeError;

namespace {

// Integers survive the JSON double representation exactly only up to 2^53.
constexpr double kMaxExactInteger = 9007199254740992.0;

[[noreturn]] void fail(const std::string& path, const std::string& why) {
    throw RuntimeError("results: \"" + path + "\": " + why);
}

double get_number(const JsonValue& v, const std::string& path) {
    if (!v.is_number()) {
        fail(path, "expected number, got " + std::string(kind_name(v.kind())));
    }
    return v.as_number();
}

std::size_t get_count(const JsonValue& v, const std::string& path) {
    const double n = get_number(v, path);
    if (!(n >= 0.0) || n > kMaxExactInteger || std::trunc(n) != n) {
        fail(path, "expected a non-negative integer");
    }
    return static_cast<std::size_t>(n);
}

/// Required row member; the diagnostic names the full missing path.
const JsonValue& require_key(const JsonValue& v, const char* key,
                             const std::string& path) {
    const JsonValue* found = v.find(key);
    if (found == nullptr) fail(path + "." + key, "required key is missing");
    return *found;
}

JsonValue result_to_json(const ga::sim::SimResult& result,
                         bool include_finish_times) {
    JsonValue out;
    out.set("work_core_hours", result.work_core_hours);
    out.set("jobs_completed", static_cast<double>(result.jobs_completed));
    out.set("jobs_skipped", static_cast<double>(result.jobs_skipped));
    out.set("total_cost", result.total_cost);
    out.set("energy_mwh", result.energy_mwh);
    out.set("operational_carbon_kg", result.operational_carbon_kg);
    out.set("attributed_carbon_kg", result.attributed_carbon_kg);
    out.set("makespan_s", result.makespan_s);
    JsonValue per_machine{JsonValue::Object{}};
    for (const auto& [machine, jobs] : result.jobs_per_machine) {
        per_machine.set(machine, static_cast<double>(jobs));
    }
    out.set("jobs_per_machine", std::move(per_machine));
    JsonValue spent{JsonValue::Object{}};
    for (const auto& [currency, amount] : result.currency_spent) {
        spent.set(currency, amount);
    }
    out.set("currency_spent", std::move(spent));
    if (include_finish_times) {
        JsonValue::Array times;
        times.reserve(result.finish_times_s.size());
        for (const double t : result.finish_times_s) times.emplace_back(t);
        out.set("finish_times_s", JsonValue(std::move(times)));
    }
    return out;
}

}  // namespace

JsonValue results_to_json(std::span<const ga::sim::SweepOutcome> outcomes,
                          const ResultWriteOptions& options) {
    JsonValue out;
    if (!options.scenario_name.empty()) {
        out.set("scenario", options.scenario_name);
    }
    JsonValue::Array rows;
    rows.reserve(outcomes.size());
    for (const auto& outcome : outcomes) {
        JsonValue row;
        row.set("label", outcome.spec.label);
        // Flatten the result fields into the row, after the label.
        JsonValue result =
            result_to_json(outcome.result, options.include_finish_times);
        for (auto& [key, value] : result.as_object()) {
            row.set(key, std::move(value));
        }
        rows.push_back(std::move(row));
    }
    out.set("results", JsonValue(std::move(rows)));
    return out;
}

std::string results_to_json_text(
    std::span<const ga::sim::SweepOutcome> outcomes,
    const ResultWriteOptions& options) {
    return write_json(results_to_json(outcomes, options));
}

std::string results_to_csv(std::span<const ga::sim::SweepOutcome> outcomes) {
    ga::util::CsvWriter writer(
        {"label", "work_core_hours", "jobs_completed", "jobs_skipped",
         "total_cost", "energy_mwh", "operational_carbon_kg",
         "attributed_carbon_kg", "makespan_s"});
    for (const auto& outcome : outcomes) {
        const auto& r = outcome.result;
        writer.add_row({outcome.spec.label, format_double(r.work_core_hours),
                        std::to_string(r.jobs_completed),
                        std::to_string(r.jobs_skipped),
                        format_double(r.total_cost),
                        format_double(r.energy_mwh),
                        format_double(r.operational_carbon_kg),
                        format_double(r.attributed_carbon_kg),
                        format_double(r.makespan_s)});
    }
    return writer.to_string();
}

std::vector<ResultRow> results_from_json(const JsonValue& root) {
    if (!root.is_object()) fail("(document)", "expected object");
    const JsonValue* rows = root.find("results");
    if (rows == nullptr) fail("results", "required key is missing");
    if (!rows->is_array()) fail("results", "expected array");
    std::vector<ResultRow> out;
    out.reserve(rows->as_array().size());
    std::size_t index = 0;
    for (const JsonValue& entry : rows->as_array()) {
        const std::string path = "results[" + std::to_string(index++) + "]";
        if (!entry.is_object()) fail(path, "expected object");
        ResultRow row;
        const JsonValue* label = entry.find("label");
        if (label == nullptr || !label->is_string()) {
            fail(path + ".label", "expected string");
        }
        row.label = label->as_string();
        auto& r = row.result;
        const auto number = [&entry, &path](const char* key) {
            return get_number(require_key(entry, key, path),
                              path + "." + key);
        };
        const auto count = [&entry, &path](const char* key) {
            return get_count(require_key(entry, key, path), path + "." + key);
        };
        r.work_core_hours = number("work_core_hours");
        r.jobs_completed = count("jobs_completed");
        r.jobs_skipped = count("jobs_skipped");
        r.total_cost = number("total_cost");
        r.energy_mwh = number("energy_mwh");
        r.operational_carbon_kg = number("operational_carbon_kg");
        r.attributed_carbon_kg = number("attributed_carbon_kg");
        r.makespan_s = number("makespan_s");
        if (const JsonValue* per_machine = entry.find("jobs_per_machine")) {
            if (!per_machine->is_object()) {
                fail(path + ".jobs_per_machine", "expected object");
            }
            for (const auto& [machine, jobs] : per_machine->as_object()) {
                r.jobs_per_machine[machine] = get_count(
                    jobs, path + ".jobs_per_machine." + machine);
            }
        }
        if (const JsonValue* spent = entry.find("currency_spent")) {
            if (!spent->is_object()) {
                fail(path + ".currency_spent", "expected object");
            }
            for (const auto& [currency, amount] : spent->as_object()) {
                r.currency_spent[currency] =
                    get_number(amount, path + ".currency_spent." + currency);
            }
        }
        if (const JsonValue* times = entry.find("finish_times_s")) {
            if (!times->is_array()) {
                fail(path + ".finish_times_s", "expected array");
            }
            std::size_t t = 0;
            for (const JsonValue& time : times->as_array()) {
                r.finish_times_s.push_back(get_number(
                    time,
                    path + ".finish_times_s[" + std::to_string(t++) + "]"));
            }
        }
        out.push_back(std::move(row));
    }
    return out;
}

}  // namespace ga::io
