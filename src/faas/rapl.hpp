// RAPL-style cumulative energy counters.
//
// Real RAPL exposes package energy as a 32-bit register in energy units that
// wraps around (documented pain point of production power monitoring; the
// paper's endpoints poll RAPL via a monitor). We model the register and the
// wrap-safe delta computation the monitor applies.
#pragma once

#include <cstdint>

namespace ga::faas {

/// Cumulative energy register with 32-bit wraparound, in micro-joules.
class RaplCounter {
public:
    /// Accumulates `joules` of energy (must be >= 0).
    void advance(double joules);

    /// Raw register value (micro-joules modulo 2^32).
    [[nodiscard]] std::uint32_t raw() const noexcept { return raw_; }

    /// Total accumulated energy in joules (for verification; real hardware
    /// does not expose this).
    [[nodiscard]] double total_joules() const noexcept { return total_j_; }

    /// Wrap-safe difference between two register reads, in joules. Assumes
    /// at most one wrap between reads (guaranteed for sane poll intervals).
    [[nodiscard]] static double delta_joules(std::uint32_t before,
                                             std::uint32_t after) noexcept;

private:
    std::uint32_t raw_ = 0;
    double total_j_ = 0.0;
    double residual_uj_ = 0.0;  ///< sub-microjoule remainder
};

}  // namespace ga::faas
