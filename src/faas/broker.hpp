// In-memory Kafka-like message broker.
//
// green-ACCESS ships endpoint telemetry through a cloud-hosted Kafka to the
// platform's streaming monitor (paper Fig. 3 / §4.1). This broker recreates
// the parts that the pipeline depends on: named topics with ordered
// partitioned logs, producer appends, and consumer groups with per-partition
// committed offsets. It is thread-safe so endpoints and monitors can run on
// separate threads, though the reference pipeline drives it single-threaded
// in virtual time for determinism.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace ga::faas {

/// One log entry.
struct Message {
    std::uint64_t offset = 0;
    std::string key;
    std::string value;
};

/// Broker with topics, partitions, and consumer-group offsets.
class Broker {
public:
    /// Creates a topic with `partitions` >= 1 partitions. Creating an
    /// existing topic is an error.
    void create_topic(const std::string& topic, std::size_t partitions = 1);

    [[nodiscard]] bool has_topic(const std::string& topic) const;
    [[nodiscard]] std::size_t partition_count(const std::string& topic) const;

    /// Appends a message; the partition is chosen by key hash (stable).
    /// Returns the assigned (partition, offset).
    std::pair<std::size_t, std::uint64_t> produce(const std::string& topic,
                                                  std::string key,
                                                  std::string value);

    /// Appends to an explicit partition.
    std::uint64_t produce_to(const std::string& topic, std::size_t partition,
                             std::string key, std::string value);

    /// Number of messages in a partition.
    [[nodiscard]] std::uint64_t end_offset(const std::string& topic,
                                           std::size_t partition) const;

    /// Reads up to `max_messages` from the consumer group's current offset
    /// and advances the offset (at-least-once semantics with auto-commit).
    [[nodiscard]] std::vector<Message> consume(const std::string& group,
                                               const std::string& topic,
                                               std::size_t partition,
                                               std::size_t max_messages);

    /// Committed offset of a group (0 when never consumed).
    [[nodiscard]] std::uint64_t committed(const std::string& group,
                                          const std::string& topic,
                                          std::size_t partition) const;

    /// Rewinds a group to an absolute offset (replay support).
    void seek(const std::string& group, const std::string& topic,
              std::size_t partition, std::uint64_t offset);

private:
    struct Partition {
        std::vector<Message> log;
    };
    struct Topic {
        std::vector<Partition> partitions;
    };

    [[nodiscard]] const Topic& topic_ref(const std::string& topic) const
        GA_REQUIRES(mutex_);
    [[nodiscard]] Topic& topic_ref(const std::string& topic)
        GA_REQUIRES(mutex_);

    // Infrastructure level of the declared lock hierarchy: a ledger
    // operation may publish telemetry through the broker, so when both
    // locks are held the ledger lock comes first.
    mutable ga::util::Mutex mutex_
        GA_ACQUIRED_AFTER(ga::acct::Ledger::mutex_);
    std::map<std::string, Topic> topics_ GA_GUARDED_BY(mutex_);
    /// (group, topic, partition) -> next offset to read.
    std::map<std::tuple<std::string, std::string, std::size_t>, std::uint64_t>
        offsets_ GA_GUARDED_BY(mutex_);
};

}  // namespace ga::faas
