#include "faas/rapl.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ga::faas {

void RaplCounter::advance(double joules) {
    GA_REQUIRE(joules >= 0.0, "rapl: energy cannot decrease");
    total_j_ += joules;
    const double uj = joules * 1e6 + residual_uj_;
    const double whole = std::floor(uj);
    residual_uj_ = uj - whole;
    // Modular add; wraps naturally at 2^32.
    raw_ += static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(whole) & 0xFFFFFFFFull);
}

double RaplCounter::delta_joules(std::uint32_t before, std::uint32_t after) noexcept {
    const std::uint32_t delta = after - before;  // wraps correctly unsigned
    return static_cast<double>(delta) * 1e-6;
}

}  // namespace ga::faas
