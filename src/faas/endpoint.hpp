// Globus-Compute-like endpoint with an attached telemetry monitor probe
// (paper Fig. 3, component 2).
//
// "Registering a machine with green-ACCESS requires deploying a Globus
// Compute Endpoint equipped with a monitor that polls data from the RAPL
// interface, reads hardware counters, and communicates those data back."
//
// The endpoint executes function invocations on its (simulated) node in
// virtual time, maintains a RAPL register driven by the node power model,
// and publishes power + per-task counter samples to the broker at a fixed
// interval.
#pragma once

#include <cstdint>
#include <vector>

#include "faas/broker.hpp"
#include "faas/rapl.hpp"
#include "faas/telemetry.hpp"
#include "machine/catalog.hpp"
#include "machine/perf.hpp"
#include "util/rng.hpp"

namespace ga::faas {

/// One accepted invocation's execution record.
struct Execution {
    std::uint64_t task_id = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    int cores = 1;
    double model_joules = 0.0;  ///< ground-truth active energy (for tests)

    [[nodiscard]] double seconds() const noexcept { return end_s - start_s; }
};

class Endpoint {
public:
    /// `sample_interval_s` is the telemetry period; `noise_w` the RAPL
    /// measurement noise standard deviation.
    Endpoint(ga::machine::CatalogEntry entry, Broker* broker,
             double sample_interval_s = 1.0, double noise_w = 0.5,
             std::uint64_t seed = 99);

    /// Schedules an invocation of `profile` on `cores` cores starting at
    /// virtual time `start_s` (>= the last flushed time). Concurrent tasks
    /// are allowed up to the node's core count.
    Execution execute(const ga::machine::WorkProfile& profile, int cores,
                      double start_s);

    /// Emits telemetry samples for all ticks up to `t_s` and advances the
    /// endpoint clock.
    void flush_until(double t_s);

    [[nodiscard]] const ga::machine::CatalogEntry& machine() const noexcept {
        return entry_;
    }
    [[nodiscard]] double clock_s() const noexcept { return clock_; }
    [[nodiscard]] const RaplCounter& rapl() const noexcept { return rapl_; }
    /// Cores currently provisioned at time t.
    [[nodiscard]] int cores_busy_at(double t_s) const noexcept;

private:
    struct ActiveTask {
        Execution exec;
        double watts = 0.0;    ///< active draw while running
        double gips = 0.0;     ///< task counter rates
        double llc_mps = 0.0;
    };

    ga::machine::CatalogEntry entry_;
    Broker* broker_;
    double interval_;
    double noise_w_;
    ga::util::Rng rng_;
    ga::machine::CpuPerfModel model_;
    double clock_ = 0.0;
    double next_sample_ = 0.0;
    std::uint64_t next_task_id_ = 1;
    std::vector<ActiveTask> tasks_;  ///< includes finished-but-unflushed tasks
    RaplCounter rapl_;
};

}  // namespace ga::faas
