#include "faas/endpoint.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ga::faas {

Endpoint::Endpoint(ga::machine::CatalogEntry entry, Broker* broker,
                   double sample_interval_s, double noise_w, std::uint64_t seed)
    : entry_(std::move(entry)),
      broker_(broker),
      interval_(sample_interval_s),
      noise_w_(noise_w),
      rng_(seed) {
    GA_REQUIRE(broker_ != nullptr, "endpoint: broker required");
    GA_REQUIRE(interval_ > 0.0, "endpoint: sample interval must be positive");
    GA_REQUIRE(noise_w_ >= 0.0, "endpoint: noise must be non-negative");
    if (!broker_->has_topic(kPowerTopic)) broker_->create_topic(kPowerTopic, 4);
    if (!broker_->has_topic(kCounterTopic)) broker_->create_topic(kCounterTopic, 4);
    next_sample_ = interval_;
}

int Endpoint::cores_busy_at(double t_s) const noexcept {
    int busy = 0;
    for (const auto& t : tasks_) {
        if (t.exec.start_s <= t_s && t_s < t.exec.end_s) busy += t.exec.cores;
    }
    return busy;
}

Execution Endpoint::execute(const ga::machine::WorkProfile& profile, int cores,
                            double start_s) {
    GA_REQUIRE(start_s >= clock_, "endpoint: cannot schedule in the past");
    GA_REQUIRE(cores >= 1 && cores <= entry_.node.total_cores(),
               "endpoint: core request out of range");
    GA_REQUIRE(cores_busy_at(start_s) + cores <= entry_.node.total_cores(),
               "endpoint: node over-committed");

    const auto est = model_.execute(profile, entry_.node, cores);
    ActiveTask task;
    task.exec.task_id = next_task_id_++;
    task.exec.start_s = start_s;
    task.exec.end_s = start_s + est.seconds;
    task.exec.cores = cores;
    task.exec.model_joules = est.joules;
    task.watts = est.avg_watts;
    // Per-task counter rates: same instruction/LLC proxies the cross-platform
    // predictor uses, expressed as whole-task rates.
    task.gips = (profile.flops + profile.mem_bytes / 8.0) / est.seconds / 1e9;
    task.llc_mps = profile.mem_bytes / 64.0 / est.seconds / 1e6;
    tasks_.push_back(task);
    return task.exec;
}

void Endpoint::flush_until(double t_s) {
    GA_REQUIRE(t_s >= clock_, "endpoint: clock cannot run backwards");
    while (next_sample_ <= t_s) {
        const double t = next_sample_;
        // Integrate energy over the elapsed interval and sample power at t.
        double watts = entry_.node.idle_w();
        for (const auto& task : tasks_) {
            const double overlap =
                std::max(0.0, std::min(t, task.exec.end_s) -
                                  std::max(t - interval_, task.exec.start_s));
            watts += task.watts * overlap / interval_;
        }
        rapl_.advance(watts * interval_);
        const double measured =
            std::max(0.0, watts + rng_.normal(0.0, noise_w_));
        broker_->produce(kPowerTopic, entry_.node.name,
                         encode(PowerSample{entry_.node.name, t, measured}));
        for (const auto& task : tasks_) {
            const double overlap =
                std::max(0.0, std::min(t, task.exec.end_s) -
                                  std::max(t - interval_, task.exec.start_s));
            if (overlap <= 0.0) continue;
            CounterSample cs;
            cs.endpoint = entry_.node.name;
            cs.t_seconds = t;
            cs.task_id = task.exec.task_id;
            cs.gips = task.gips * overlap / interval_;
            cs.llc_mps = task.llc_mps * overlap / interval_;
            cs.cores = task.exec.cores;
            broker_->produce(kCounterTopic, entry_.node.name, encode(cs));
        }
        next_sample_ += interval_;
    }
    clock_ = t_s;
    // Drop tasks that have fully ended and been covered by samples.
    std::erase_if(tasks_, [this](const ActiveTask& task) {
        return task.exec.end_s + interval_ < next_sample_;
    });
}

}  // namespace ga::faas
