// The green-ACCESS platform facade (paper Fig. 3, component 1).
//
// Request router + access control + prediction endpoint + accounting. Users
// hold fungible allocations in the unit of the platform's accounting method;
// the prediction service estimates per-machine cost before submission; the
// router admits, executes on the chosen endpoint, drives the telemetry
// pipeline, and charges the ledger with the monitor-measured energy.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/allocation.hpp"
#include "core/estimate.hpp"
#include "faas/endpoint.hpp"
#include "faas/monitor.hpp"

namespace ga::faas {

/// Outcome of one submission.
struct InvocationResult {
    bool accepted = false;
    std::string reject_reason;
    std::string machine;
    std::uint64_t task_id = 0;
    double duration_s = 0.0;
    double measured_energy_j = 0.0;  ///< monitor-attributed
    double cost = 0.0;               ///< charged to the user's allocation
};

class GreenAccess {
public:
    /// Creates the platform with one accounting method for all charges.
    explicit GreenAccess(std::unique_ptr<const ga::acct::Accountant> accountant);

    /// Convenience with a default method (enum shim over the registry).
    static GreenAccess with_method(ga::acct::Method method);

    /// Convenience building any registry accountant by spec.
    static GreenAccess with_accountant(const ga::acct::AccountantSpec& spec);

    /// Registers a machine (deploys an endpoint for it).
    void register_endpoint(const ga::machine::CatalogEntry& entry);

    /// Creates a user with a fungible allocation in the method's unit.
    void create_user(const std::string& user, double budget);

    /// Prediction service: per-machine cost estimates for a work profile,
    /// cheapest first (paper: "a prediction service that provides estimates
    /// of the energy consumption of their jobs").
    [[nodiscard]] std::vector<ga::acct::CostEstimate> predict(
        const ga::machine::WorkProfile& profile, int cores) const;

    /// Submits a function invocation. When `machine` is empty the router
    /// picks the cheapest endpoint. Executes synchronously in virtual time;
    /// telemetry flows broker -> monitor; the measured energy is charged.
    InvocationResult submit(const std::string& user,
                            const ga::machine::WorkProfile& profile, int cores,
                            const std::string& machine = "");

    /// Advances the platform clock (endpoints emit telemetry up to `t`).
    void advance_to(double t_s);

    [[nodiscard]] double now_s() const noexcept { return clock_; }
    [[nodiscard]] const ga::acct::Ledger& ledger() const noexcept { return ledger_; }
    [[nodiscard]] const EndpointMonitor& monitor() const noexcept {
        return monitor_;
    }
    [[nodiscard]] const ga::acct::Accountant& accountant() const noexcept {
        return *accountant_;
    }
    [[nodiscard]] std::vector<std::string> endpoint_names() const;

private:
    std::unique_ptr<const ga::acct::Accountant> accountant_;
    Broker broker_;
    EndpointMonitor monitor_;
    std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
    ga::acct::Ledger ledger_;
    ga::acct::CostEstimator estimator_;
    double clock_ = 0.0;
};

}  // namespace ga::faas
