#include "faas/broker.hpp"

#include <cstdint>

#include "util/error.hpp"

namespace ga::faas {

namespace {

/// FNV-1a over the key bytes. Partition assignment is part of the broker's
/// observable behavior (consumers subscribe per partition), so it must not
/// depend on the standard library: std::hash<std::string> differs between
/// libstdc++ and libc++, which would route the same key to different
/// partitions on different platforms.
std::uint64_t stable_hash(const std::string& key) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const unsigned char c : key) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

}  // namespace

void Broker::create_topic(const std::string& topic, std::size_t partitions) {
    GA_REQUIRE(partitions >= 1, "broker: topic needs at least one partition");
    const ga::util::LockGuard lock(mutex_);
    GA_REQUIRE(topics_.find(topic) == topics_.end(), "broker: topic already exists");
    topics_[topic].partitions.resize(partitions);
}

bool Broker::has_topic(const std::string& topic) const {
    const ga::util::LockGuard lock(mutex_);
    return topics_.find(topic) != topics_.end();
}

std::size_t Broker::partition_count(const std::string& topic) const {
    const ga::util::LockGuard lock(mutex_);
    return topic_ref(topic).partitions.size();
}

const Broker::Topic& Broker::topic_ref(const std::string& topic) const {
    const auto it = topics_.find(topic);
    if (it == topics_.end()) {
        throw ga::util::RuntimeError("broker: unknown topic '" + topic + "'");
    }
    return it->second;
}

Broker::Topic& Broker::topic_ref(const std::string& topic) {
    const auto it = topics_.find(topic);
    if (it == topics_.end()) {
        throw ga::util::RuntimeError("broker: unknown topic '" + topic + "'");
    }
    return it->second;
}

std::pair<std::size_t, std::uint64_t> Broker::produce(const std::string& topic,
                                                      std::string key,
                                                      std::string value) {
    const ga::util::LockGuard lock(mutex_);
    Topic& t = topic_ref(topic);
    const std::size_t partition =
        static_cast<std::size_t>(stable_hash(key) % t.partitions.size());
    Partition& p = t.partitions[partition];
    const std::uint64_t offset = p.log.size();
    p.log.push_back(Message{offset, std::move(key), std::move(value)});
    return {partition, offset};
}

std::uint64_t Broker::produce_to(const std::string& topic, std::size_t partition,
                                 std::string key, std::string value) {
    const ga::util::LockGuard lock(mutex_);
    Topic& t = topic_ref(topic);
    GA_REQUIRE(partition < t.partitions.size(), "broker: partition out of range");
    Partition& p = t.partitions[partition];
    const std::uint64_t offset = p.log.size();
    p.log.push_back(Message{offset, std::move(key), std::move(value)});
    return offset;
}

std::uint64_t Broker::end_offset(const std::string& topic,
                                 std::size_t partition) const {
    const ga::util::LockGuard lock(mutex_);
    const Topic& t = topic_ref(topic);
    GA_REQUIRE(partition < t.partitions.size(), "broker: partition out of range");
    return t.partitions[partition].log.size();
}

std::vector<Message> Broker::consume(const std::string& group,
                                     const std::string& topic,
                                     std::size_t partition,
                                     std::size_t max_messages) {
    const ga::util::LockGuard lock(mutex_);
    Topic& t = topic_ref(topic);
    GA_REQUIRE(partition < t.partitions.size(), "broker: partition out of range");
    const Partition& p = t.partitions[partition];
    auto& offset = offsets_[std::make_tuple(group, topic, partition)];
    std::vector<Message> out;
    while (offset < p.log.size() && out.size() < max_messages) {
        out.push_back(p.log[offset]);
        ++offset;
    }
    return out;
}

std::uint64_t Broker::committed(const std::string& group, const std::string& topic,
                                std::size_t partition) const {
    const ga::util::LockGuard lock(mutex_);
    const auto it = offsets_.find(std::make_tuple(group, topic, partition));
    return it == offsets_.end() ? 0 : it->second;
}

void Broker::seek(const std::string& group, const std::string& topic,
                  std::size_t partition, std::uint64_t offset) {
    const ga::util::LockGuard lock(mutex_);
    const Topic& t = topic_ref(topic);
    GA_REQUIRE(partition < t.partitions.size(), "broker: partition out of range");
    GA_REQUIRE(offset <= t.partitions[partition].log.size(),
               "broker: seek past end of log");
    offsets_[std::make_tuple(group, topic, partition)] = offset;
}

}  // namespace ga::faas
