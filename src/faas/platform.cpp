#include "faas/platform.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ga::faas {

namespace {

/// Platform instruments: invocation admission outcomes.
struct PlatformMetrics {
    ga::obs::Counter& invocations_accepted;
    ga::obs::Counter& invocations_rejected;
};

PlatformMetrics& platform_metrics() {
    auto& registry = ga::obs::Registry::global();
    static PlatformMetrics metrics{
        registry.counter_handle("faas.invocations_accepted"),
        registry.counter_handle("faas.invocations_rejected"),
    };
    return metrics;
}

}  // namespace

GreenAccess::GreenAccess(std::unique_ptr<const ga::acct::Accountant> accountant)
    : accountant_(std::move(accountant)), monitor_(&broker_) {
    GA_REQUIRE(accountant_ != nullptr, "platform: accountant required");
}

GreenAccess GreenAccess::with_method(ga::acct::Method method) {
    return GreenAccess(ga::acct::make_accountant(method));
}

GreenAccess GreenAccess::with_accountant(const ga::acct::AccountantSpec& spec) {
    return GreenAccess(ga::acct::AccountantRegistry::global().make(spec));
}

void GreenAccess::register_endpoint(const ga::machine::CatalogEntry& entry) {
    GA_REQUIRE(endpoints_.find(entry.node.name) == endpoints_.end(),
               "platform: endpoint already registered");
    endpoints_[entry.node.name] = std::make_unique<Endpoint>(
        entry, &broker_, /*sample_interval_s=*/1.0, /*noise_w=*/0.5,
        /*seed=*/0xE9D0 + endpoints_.size());
}

void GreenAccess::create_user(const std::string& user, double budget) {
    ledger_.create_account(user, budget);
}

std::vector<std::string> GreenAccess::endpoint_names() const {
    std::vector<std::string> names;
    names.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) names.push_back(name);
    return names;
}

std::vector<ga::acct::CostEstimate> GreenAccess::predict(
    const ga::machine::WorkProfile& profile, int cores) const {
    std::vector<ga::machine::CatalogEntry> machines;
    machines.reserve(endpoints_.size());
    for (const auto& [name, ep] : endpoints_) machines.push_back(ep->machine());
    return estimator_.rank(profile, machines, cores, *accountant_, clock_);
}

InvocationResult GreenAccess::submit(const std::string& user,
                                     const ga::machine::WorkProfile& profile,
                                     int cores, const std::string& machine) {
    InvocationResult result;
    PlatformMetrics& metrics = platform_metrics();

    // ---- access control ----
    if (!ledger_.has_account(user)) {
        result.reject_reason = "unknown user";
        metrics.invocations_rejected.inc();
        return result;
    }

    // ---- routing ----
    const Endpoint* target = nullptr;
    if (machine.empty()) {
        const auto ranked = predict(profile, cores);
        GA_REQUIRE(!ranked.empty(), "platform: no endpoints registered");
        target = endpoints_.at(ranked.front().machine).get();
    } else {
        const auto it = endpoints_.find(machine);
        if (it == endpoints_.end()) {
            result.reject_reason = "unknown machine";
            metrics.invocations_rejected.inc();
            return result;
        }
        target = it->second.get();
    }

    // ---- admission: the predicted cost must fit the remaining budget ----
    const auto estimate = estimator_.estimate(
        profile, target->machine(), cores, *accountant_, clock_);
    if (ledger_.remaining(user) < estimate.cost) {
        result.reject_reason = "insufficient allocation";
        metrics.invocations_rejected.inc();
        return result;
    }

    // ---- execute (virtual time) and stream telemetry ----
    Endpoint* ep = endpoints_.at(target->machine().node.name).get();
    const Execution exec = ep->execute(profile, cores, clock_);
    // Flush well past the end: the trailing idle samples anchor the power
    // model's intercept and guarantee the monitor reaches its refit cadence
    // even for sub-second invocations.
    advance_to(exec.end_s + 20.0);

    // ---- charge with the measured energy ----
    const double measured = monitor_.task_energy_j(exec.task_id);
    ga::acct::JobUsage usage;
    usage.duration_s = exec.seconds();
    usage.energy_j = measured;
    usage.cores = exec.cores;
    usage.priced_at_s = exec.start_s;
    const double cost =
        ledger_.charge(user, *accountant_, usage, ep->machine());
    if (cost < 0.0) {
        // Measured energy exceeded the estimate and the remaining budget;
        // the provider absorbs the overrun but the job is reported rejected
        // for accounting purposes.
        result.reject_reason = "allocation exhausted at settlement";
        metrics.invocations_rejected.inc();
        return result;
    }

    result.accepted = true;
    metrics.invocations_accepted.inc();
    result.machine = ep->machine().node.name;
    result.task_id = exec.task_id;
    result.duration_s = exec.seconds();
    result.measured_energy_j = measured;
    result.cost = cost;
    return result;
}

void GreenAccess::advance_to(double t_s) {
    GA_REQUIRE(t_s >= clock_, "platform: clock cannot run backwards");
    clock_ = t_s;
    for (auto& [name, ep] : endpoints_) ep->flush_until(t_s);
    monitor_.poll();
}

}  // namespace ga::faas
