// Telemetry records shipped from endpoints to the monitor, with a compact
// text wire format (the broker carries opaque strings, like Kafka).
#pragma once

#include <cstdint>
#include <string>

namespace ga::faas {

/// Node-level RAPL-style power sample.
struct PowerSample {
    std::string endpoint;
    double t_seconds = 0.0;
    double node_watts = 0.0;
};

/// Per-task hardware-counter sample over the last interval.
struct CounterSample {
    std::string endpoint;
    double t_seconds = 0.0;
    std::uint64_t task_id = 0;
    double gips = 0.0;     ///< instructions/s, billions (task total)
    double llc_mps = 0.0;  ///< LLC misses/s, millions (task total)
    int cores = 1;
};

/// Serialization (field-separated, locale-independent).
[[nodiscard]] std::string encode(const PowerSample& s);
[[nodiscard]] std::string encode(const CounterSample& s);

/// Parsing; throws RuntimeError on malformed input.
[[nodiscard]] PowerSample decode_power(const std::string& wire);
[[nodiscard]] CounterSample decode_counters(const std::string& wire);

/// Topic names used by the pipeline.
inline constexpr const char* kPowerTopic = "greenaccess.power";
inline constexpr const char* kCounterTopic = "greenaccess.counters";

}  // namespace ga::faas
