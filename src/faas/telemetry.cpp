#include "faas/telemetry.hpp"

#include <cstdio>
#include <cstring>

#include "util/error.hpp"

namespace ga::faas {

namespace {

constexpr std::size_t kBufSize = 256;

}  // namespace

std::string encode(const PowerSample& s) {
    char buf[kBufSize];
    std::snprintf(buf, sizeof(buf), "P|%s|%.9g|%.9g", s.endpoint.c_str(),
                  s.t_seconds, s.node_watts);
    return buf;
}

std::string encode(const CounterSample& s) {
    char buf[kBufSize];
    std::snprintf(buf, sizeof(buf), "C|%s|%.9g|%llu|%.9g|%.9g|%d",
                  s.endpoint.c_str(), s.t_seconds,
                  static_cast<unsigned long long>(s.task_id), s.gips, s.llc_mps,
                  s.cores);
    return buf;
}

PowerSample decode_power(const std::string& wire) {
    char endpoint[kBufSize] = {};
    PowerSample s;
    // %[^|] scans the endpoint name up to the next separator.
    const int n = std::sscanf(wire.c_str(), "P|%127[^|]|%lf|%lf", endpoint,
                              &s.t_seconds, &s.node_watts);
    if (n != 3) throw ga::util::RuntimeError("telemetry: bad power record: " + wire);
    s.endpoint = endpoint;
    return s;
}

CounterSample decode_counters(const std::string& wire) {
    char endpoint[kBufSize] = {};
    CounterSample s;
    unsigned long long task = 0;
    const int n =
        std::sscanf(wire.c_str(), "C|%127[^|]|%lf|%llu|%lf|%lf|%d", endpoint,
                    &s.t_seconds, &task, &s.gips, &s.llc_mps, &s.cores);
    if (n != 6) {
        throw ga::util::RuntimeError("telemetry: bad counter record: " + wire);
    }
    s.endpoint = endpoint;
    s.task_id = task;
    return s;
}

}  // namespace ga::faas
