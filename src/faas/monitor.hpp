// The green-ACCESS endpoint monitor (paper Fig. 3, component 3).
//
// "Energy and performance counter data are transferred via Kafka to
// green-ACCESS, where they are consumed by the endpoint monitor, a streaming
// consumer... This monitor disaggregates per-node power measurements from
// the RAPL subsystem into user jobs... we collect per-process hardware
// performance counters and periodically fit a power model between
// performance counters and measured energy. Per-process estimates are
// aggregated to obtain the energy used by a task."
//
// The power model is an OLS fit  node_watts ≈ a·ΣGIPS + b·ΣLLC + c·Σcores + d
// over aligned samples; the intercept d estimates idle power, and the
// per-task share a·gips + b·llc + c·cores integrates to task energy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faas/broker.hpp"
#include "faas/telemetry.hpp"
#include "stats/regression.hpp"

namespace ga::faas {

class EndpointMonitor {
public:
    /// `refit_every` controls how often (in consumed power samples per
    /// endpoint) the model is refit — the paper refits periodically.
    explicit EndpointMonitor(Broker* broker,
                             std::string group = "green-access-monitor",
                             std::size_t refit_every = 16);

    /// Consumes all pending telemetry and updates task energy attributions.
    void poll();

    /// Attributed energy of a task so far (0 if unseen).
    [[nodiscard]] double task_energy_j(std::uint64_t task_id) const;

    /// Latest fitted power model for an endpoint (nullopt before first fit).
    [[nodiscard]] std::optional<ga::stats::OlsFit> power_model(
        const std::string& endpoint) const;

    /// Idle-power estimate (the fit intercept), 0 before the first fit.
    [[nodiscard]] double idle_estimate_w(const std::string& endpoint) const;

    /// Number of power samples consumed for an endpoint.
    [[nodiscard]] std::size_t sample_count(const std::string& endpoint) const;

private:
    struct Sample {
        double t = 0.0;
        double watts = 0.0;
        double gips = 0.0;
        double llc = 0.0;
        double cores = 0.0;
        std::vector<CounterSample> tasks;
    };

    static constexpr std::size_t kFitBufferCap = 512;

    struct EndpointState {
        std::vector<Sample> window;      ///< samples awaiting attribution
        std::vector<Sample> fit_buffer;  ///< recent samples for (re)fitting
        std::optional<ga::stats::OlsFit> fit;
        std::size_t samples_seen = 0;
        double interval = 1.0;        ///< inferred sampling period
        double last_t = 0.0;
        std::map<double, std::vector<CounterSample>> pending_counters;
    };

    void refit(EndpointState& state);
    void attribute(EndpointState& state);

    Broker* broker_;
    std::string group_;
    std::size_t refit_every_;
    std::map<std::string, EndpointState> endpoints_;
    std::map<std::uint64_t, double> task_energy_;
};

}  // namespace ga::faas
