#include "faas/monitor.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ga::faas {

namespace {

/// Monitor instruments, replacing the ad-hoc per-endpoint tallies earlier
/// revisions kept alongside `samples_seen` (which stays: it drives the
/// refit cadence and the public sample_count()).
struct MonitorMetrics {
    ga::obs::Counter& power_samples;
    ga::obs::Counter& counter_samples;
    ga::obs::Counter& model_refits;
    ga::obs::Counter& attributions;
};

MonitorMetrics& monitor_metrics() {
    auto& registry = ga::obs::Registry::global();
    static MonitorMetrics metrics{
        registry.counter_handle("faas.power_samples"),
        registry.counter_handle("faas.counter_samples"),
        registry.counter_handle("faas.model_refits"),
        registry.counter_handle("faas.attributions"),
    };
    return metrics;
}

}  // namespace

EndpointMonitor::EndpointMonitor(Broker* broker, std::string group,
                                 std::size_t refit_every)
    : broker_(broker), group_(std::move(group)), refit_every_(refit_every) {
    GA_REQUIRE(broker_ != nullptr, "monitor: broker required");
    GA_REQUIRE(refit_every_ >= 4, "monitor: refit cadence too small to fit");
}

void EndpointMonitor::poll() {
    if (!broker_->has_topic(kPowerTopic) || !broker_->has_topic(kCounterTopic)) {
        return;  // no endpoint has produced yet
    }

    MonitorMetrics& metrics = monitor_metrics();
    // Counters first so power samples can be aligned with them immediately.
    for (std::size_t p = 0; p < broker_->partition_count(kCounterTopic); ++p) {
        for (const auto& msg : broker_->consume(group_, kCounterTopic, p, 100000)) {
            const CounterSample cs = decode_counters(msg.value);
            endpoints_[cs.endpoint].pending_counters[cs.t_seconds].push_back(cs);
            metrics.counter_samples.inc();
        }
    }
    for (std::size_t p = 0; p < broker_->partition_count(kPowerTopic); ++p) {
        for (const auto& msg : broker_->consume(group_, kPowerTopic, p, 100000)) {
            const PowerSample ps = decode_power(msg.value);
            EndpointState& state = endpoints_[ps.endpoint];
            Sample s;
            s.t = ps.t_seconds;
            s.watts = ps.node_watts;
            const auto it = state.pending_counters.find(ps.t_seconds);
            if (it != state.pending_counters.end()) {
                s.tasks = it->second;
                state.pending_counters.erase(it);
            }
            for (const auto& cs : s.tasks) {
                s.gips += cs.gips;
                s.llc += cs.llc_mps;
                s.cores += cs.cores;
            }
            if (state.samples_seen > 0 && ps.t_seconds > state.last_t) {
                state.interval = ps.t_seconds - state.last_t;
            }
            state.last_t = ps.t_seconds;
            ++state.samples_seen;
            metrics.power_samples.inc();
            state.fit_buffer.push_back(s);
            if (state.fit_buffer.size() > kFitBufferCap) {
                state.fit_buffer.erase(state.fit_buffer.begin());
            }
            state.window.push_back(std::move(s));
            if (state.samples_seen % refit_every_ == 0) refit(state);
            // Attribute as soon as a model exists; otherwise samples wait in
            // the window for the first fit.
            if (state.fit) attribute(state);
        }
    }
}

void EndpointMonitor::refit(EndpointState& state) {
    if (state.fit_buffer.size() < 8) return;
    std::vector<double> rows;
    std::vector<double> y;
    rows.reserve(state.fit_buffer.size() * 3);
    y.reserve(state.fit_buffer.size());
    for (const auto& s : state.fit_buffer) {
        rows.push_back(s.gips);
        rows.push_back(s.llc);
        rows.push_back(s.cores);
        y.push_back(s.watts);
    }
    state.fit = ga::stats::ols_fit(rows, 3, y, /*with_intercept=*/true);
    monitor_metrics().model_refits.inc();
}

void EndpointMonitor::attribute(EndpointState& state) {
    GA_REQUIRE(state.fit.has_value(), "monitor: attribute before fit");
    for (const auto& s : state.window) {
        for (const auto& cs : s.tasks) {
            const std::vector<double> features = {cs.gips, cs.llc_mps,
                                                  static_cast<double>(cs.cores)};
            // The intercept is the node's idle draw and is not attributed to
            // tasks (jobs are charged for their active share; idle belongs to
            // the provider under this disaggregation).
            const double watts =
                std::max(0.0, state.fit->predict(features) - state.fit->intercept);
            task_energy_[cs.task_id] += watts * state.interval;
        }
    }
    monitor_metrics().attributions.inc(state.window.size());
    state.window.clear();
}

double EndpointMonitor::task_energy_j(std::uint64_t task_id) const {
    const auto it = task_energy_.find(task_id);
    return it == task_energy_.end() ? 0.0 : it->second;
}

std::optional<ga::stats::OlsFit> EndpointMonitor::power_model(
    const std::string& endpoint) const {
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) return std::nullopt;
    return it->second.fit;
}

double EndpointMonitor::idle_estimate_w(const std::string& endpoint) const {
    const auto fit = power_model(endpoint);
    return fit ? fit->intercept : 0.0;
}

std::size_t EndpointMonitor::sample_count(const std::string& endpoint) const {
    const auto it = endpoints_.find(endpoint);
    return it == endpoints_.end() ? 0 : it->second.samples_seen;
}

}  // namespace ga::faas
