// Micro-benchmarks (google-benchmark): batch-simulator throughput — jobs
// simulated per second per policy (legacy enum path and registry
// `PolicySpec` path, including the context-aware strategies that read the
// scheduling context on every routing decision), and sweep-engine scaling:
// scenarios per second for an 8-policy grid at increasing thread counts.
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workload/workload.hpp"

namespace {

const ga::sim::BatchSimulator& simulator() {
    static const ga::sim::BatchSimulator sim = [] {
        ga::workload::TraceOptions o;
        o.base_jobs = 5000;
        o.users = 100;
        o.span_days = 6.0;
        o.seed = 51;
        return ga::sim::BatchSimulator(ga::workload::build_workload(o));
    }();
    return sim;
}

void BM_Policy(benchmark::State& state, ga::sim::Policy policy) {
    ga::sim::SimOptions o;
    o.policy = policy;
    o.pricing = ga::acct::Method::Eba;
    for (auto _ : state) {
        const auto r = simulator().run(o);
        benchmark::DoNotOptimize(r.work_core_hours);
    }
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(simulator().workload().jobs.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

// Same throughput metric, but routed through a registry PolicySpec — the
// spec-vs-enum deltas (greedy_spec vs greedy) isolate the strategy-API
// overhead; the context-aware policies additionally price the per-cluster
// grid/queue views they consult.
void BM_PolicySpec(benchmark::State& state, const char* name) {
    ga::sim::SimOptions o;
    o.policy_spec = ga::sim::PolicySpec{name, {}};
    o.pricing = ga::acct::Method::Eba;
    for (auto _ : state) {
        const auto r = simulator().run(o);
        benchmark::DoNotOptimize(r.work_core_hours);
    }
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(simulator().workload().jobs.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

// Full 8-policy grid through the sweep engine; range(0) = worker threads.
// threads=1 is the serial baseline, higher counts show the parallel speedup.
void BM_Sweep(benchmark::State& state) {
    ga::sim::SweepGrid grid;
    grid.policies = ga::sim::all_policies();
    const auto specs = grid.expand();
    ga::sim::SweepRunner runner(simulator(),
                                static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const auto outcomes = runner.run(specs);
        benchmark::DoNotOptimize(outcomes.front().result.work_core_hours);
    }
    state.counters["scenarios/s"] = benchmark::Counter(
        static_cast<double>(specs.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Policy, greedy, ga::sim::Policy::Greedy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, energy, ga::sim::Policy::Energy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, mixed, ga::sim::Policy::Mixed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, eft, ga::sim::Policy::Eft)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicySpec, greedy_spec, "Greedy")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicySpec, carbon_aware, "CarbonAware")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicySpec, least_loaded, "LeastLoaded")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();
