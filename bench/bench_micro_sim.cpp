// Micro-benchmarks (google-benchmark): batch-simulator throughput — jobs
// simulated per second for each policy.
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace {

const ga::sim::BatchSimulator& simulator() {
    static const ga::sim::BatchSimulator sim = [] {
        ga::workload::TraceOptions o;
        o.base_jobs = 5000;
        o.users = 100;
        o.span_days = 6.0;
        o.seed = 51;
        return ga::sim::BatchSimulator(ga::workload::build_workload(o));
    }();
    return sim;
}

void BM_Policy(benchmark::State& state, ga::sim::Policy policy) {
    ga::sim::SimOptions o;
    o.policy = policy;
    o.pricing = ga::acct::Method::Eba;
    for (auto _ : state) {
        const auto r = simulator().run(o);
        benchmark::DoNotOptimize(r.work_core_hours);
    }
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(simulator().workload().jobs.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Policy, greedy, ga::sim::Policy::Greedy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, energy, ga::sim::Policy::Energy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, mixed, ga::sim::Policy::Mixed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Policy, eft, ga::sim::Policy::Eft)
    ->Unit(benchmark::kMillisecond);
