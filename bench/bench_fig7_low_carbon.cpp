// Figure 7: the low-carbon scenario. Each facility sits on a high-variability
// grid (AU-SA, CA-ON, NO-NO2, DK-BHM).
//   7a — work completed under a fixed CBA allocation per policy;
//   7b — hourly carbon intensity of the four grids over one day;
//   7c — which machine is the cheapest CBA endpoint as the day progresses.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "bench_sim_common.hpp"
#include "carbon/grids.hpp"
#include "core/accounting.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const auto args = ga::bench::parse_bench_args(argc, argv);
    ga::bench::banner("Figure 7: CBA with low-carbon regional grids");
    const auto simulator = ga::bench::make_simulator(args);

    // ---- 7a: the five budgeted regional-grid runs, swept concurrently ----
    // Beyond the paper, the same grid also sweeps three context-aware
    // registry policies (open policy API): carbon-intensity routing and
    // budget pacing, appended after the enum axis.
    const auto greedy_full = ga::bench::run(
        simulator, ga::sim::Policy::Greedy, ga::acct::Method::Cba, 0.0, true);
    const double budget = greedy_full.total_cost * 0.75;
    ga::sim::SweepGrid grid;
    grid.policies = ga::sim::multi_machine_policies();
    grid.policy_specs = {
        ga::sim::PolicySpec{"CarbonAware", {}},
        ga::sim::PolicySpec{"CarbonAware", {{"forecast", 1.0}}},
        ga::sim::PolicySpec{"BudgetPacing", {}},
    };
    grid.pricings = {ga::acct::Method::Cba};
    grid.budgets = {budget};
    grid.regional_grids = {true};
    const auto outcomes = ga::bench::sweep(simulator, grid);
    ga::util::TablePrinter work_table({"Policy", "Work (M core-h)", "Jobs done"});
    work_table.set_title(
        "Fig 7a: work at fixed CBA allocation, regional grids "
        "(+ beyond-paper policies)");
    for (const auto& outcome : outcomes) {
        const auto& o = outcome.spec.options;
        const std::string policy_label =
            o.policy_spec.has_value()
                ? o.policy_spec->label() + " *"
                : std::string(ga::sim::to_string(o.policy));
        const auto& r = outcome.result;
        work_table.add_row(
            {policy_label,
             ga::util::TablePrinter::num(r.work_core_hours / 1e6, 2),
             std::to_string(r.jobs_completed)});
    }
    std::printf("%s(* = context-aware registry policy, beyond the paper)\n",
                work_table.render().c_str());

    // ---- 7b ----
    std::map<std::string, ga::carbon::IntensityTrace> traces;
    std::map<std::string, std::string> machine_region;
    for (const auto& entry : ga::machine::simulation_machines()) {
        traces.emplace(entry.node.name,
                       ga::carbon::synthesize(
                           ga::carbon::region(entry.grid_region), 30, 77));
        machine_region[entry.node.name] = entry.grid_region;
    }
    ga::util::TablePrinter grid_table({"Hour", "AU-SA (IC)", "CA-ON (FASTER)",
                                       "NO-NO2 (Desktop)", "DK-BHM (Theta)"});
    grid_table.set_title("Fig 7b: carbon intensity (gCO2e/kWh), simulation day 3");
    const double day = 3 * 86400.0;
    for (int h = 0; h < 24; h += 2) {
        const double t = day + h * 3600.0;
        grid_table.add_row(
            {std::to_string(h),
             ga::util::TablePrinter::num(traces.at("IC").at(t), 0),
             ga::util::TablePrinter::num(traces.at("FASTER").at(t), 0),
             ga::util::TablePrinter::num(traces.at("Desktop").at(t), 0),
             ga::util::TablePrinter::num(traces.at("Theta").at(t), 0)});
    }
    std::printf("%s", grid_table.render().c_str());

    // ---- 7c ----
    const ga::acct::CarbonBasedAccounting cba(std::move(traces));
    ga::util::TablePrinter cheapest_table(
        {"Hour", "Cheapest (<=16 cores)", "Cost (g)", "Cheapest (32 cores)",
         "Cost (g)"});
    cheapest_table.set_title(
        "Fig 7c: lowest-CBA-cost machine for a 1 kWh, 1-hour job, by hour");
    std::map<std::string, int> wins;
    for (int h = 0; h < 24; ++h) {
        std::vector<std::string> row = {std::to_string(h)};
        for (const int cores : {16, 32}) {
            ga::acct::JobUsage u;
            u.duration_s = 3600.0;
            u.energy_j = 3.6e6;
            u.cores = cores;
            u.priced_at_s = day + h * 3600.0;
            std::string best;
            double best_cost = 1e300;
            for (const auto& entry : ga::machine::simulation_machines()) {
                if (u.cores > entry.node.total_cores()) continue;
                const double c = cba.charge(u, entry);
                if (c < best_cost) {
                    best_cost = c;
                    best = entry.node.name;
                }
            }
            if (cores == 32) ++wins[best];  // cluster-only competition
            row.push_back(best);
            row.push_back(ga::util::TablePrinter::num(best_cost, 1));
        }
        cheapest_table.add_row(std::move(row));
    }
    std::printf("%s", cheapest_table.render().c_str());
    std::printf("\nshare of hours won (32-core jobs):");
    for (const auto& [m, n] : wins) {
        std::printf(" %s=%d/24", m.c_str(), n);
    }
    std::printf(
        "\n\nPaper shapes: the carbon-aware Greedy completes the most work; the\n"
        "cheapest endpoint shifts across the day (Theta/DK-BHM early, IC/AU-SA\n"
        "when Australian solar comes online) — CBA incentivizes temporal and\n"
        "spatial alignment with renewable generation.\n");
    return 0;
}
