// Figure 10: probability a job was run (given it was seen) vs the mean
// energy participants consumed on it — per version, with correlations.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/correlation.hpp"
#include "study/study.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    (void)ga::bench::parse_bench_args(argc, argv);  // sub-second; --smoke ignored
    ga::bench::banner("Figure 10: run probability vs job energy");

    const auto results = ga::study::run_study();
    const auto per_job = results.per_job_stats();

    ga::util::TablePrinter table({"Job", "V1 P(run)", "V1 E", "V2 P(run)",
                                  "V2 E", "V3 P(run)", "V3 E"});
    for (int j = 0; j < ga::study::Game::kTotalJobs; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        std::vector<std::string> row = {std::to_string(j)};
        for (std::size_t v = 0; v < 3; ++v) {
            const auto& s = per_job[v][ju];
            row.push_back(ga::util::TablePrinter::num(s.run_probability, 2));
            row.push_back(s.times_run > 0
                              ? ga::util::TablePrinter::num(s.mean_energy, 0)
                              : std::string("-"));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nPearson correlation of P(run) with mean job energy:\n");
    for (std::size_t v = 0; v < 3; ++v) {
        std::vector<double> prob;
        std::vector<double> energy;
        for (const auto& s : per_job[v]) {
            if (s.times_seen < 5 || s.times_run == 0) continue;
            prob.push_back(s.run_probability);
            energy.push_back(s.mean_energy);
        }
        const double r = ga::stats::pearson(prob, energy);
        std::printf("  V%zu: r = %+.3f (p = %.2f, n = %zu)\n", v + 1, r,
                    ga::stats::pearson_p_value(r, prob.size()), prob.size());
    }
    std::printf(
        "\nPaper finding: no correlation in any version — even when cost\n"
        "depended on energy (V3), the DECISION to run a job was not influenced\n"
        "by its energy; participants saved energy by choosing efficient\n"
        "machines, not by dropping energy-hungry jobs.\n");
    return 0;
}
