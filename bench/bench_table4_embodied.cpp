// Table 4: operational carbon vs two ways of attributing embodied carbon
// (linear and the paper's accelerated depreciation) for the Cholesky job on
// the four Chameleon CPU nodes.
#include <cstdio>

#include "bench_common.hpp"
#include "carbon/rates.hpp"
#include "core/accounting.hpp"
#include "kernels/kernel.hpp"
#include "machine/catalog.hpp"
#include "machine/perf.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Table 4: linear vs accelerated embodied-carbon attribution");

    const auto kernel = ga::kernels::make_cholesky();
    std::printf("executing Cholesky n=%d on the host...\n", kernel->paper_scale());
    const auto result = kernel->run(kernel->paper_scale());

    const ga::machine::CpuPerfModel model;
    const ga::acct::CarbonBasedAccounting cba;

    ga::util::TablePrinter table({"Machine", "Age", "Operational (mg)",
                                  "Linear (mg)", "Accel. (mg)", "Accel/Linear"});
    for (const auto& entry : ga::machine::chameleon_cpu_nodes()) {
        const auto exec = model.execute(result.profile, entry.node, 1);
        ga::acct::JobUsage u;
        u.duration_s = exec.seconds;
        u.energy_j = exec.joules;
        u.cores = 1;
        const double op_mg = cba.operational_g(u, entry) * 1000.0;
        const double hours = exec.seconds / 3600.0;
        const double linear_mg =
            ga::carbon::per_core_rate_g_per_hour(
                entry, ga::carbon::DepreciationMethod::Linear) *
            hours * 1000.0;
        const double accel_mg =
            ga::carbon::per_core_rate_g_per_hour(
                entry, ga::carbon::DepreciationMethod::DoubleDeclining) *
            hours * 1000.0;
        table.add_row({entry.node.name,
                       ga::util::TablePrinter::num(entry.age_years(), 0),
                       ga::util::TablePrinter::num(op_mg, 2),
                       ga::util::TablePrinter::num(linear_mg, 2),
                       ga::util::TablePrinter::num(accel_mg, 2),
                       ga::util::TablePrinter::num(accel_mg / linear_mg, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values (mg): op 2.1/2.8/0.9/1.2; linear 1.5/1.0/1.4/1.3;\n"
        "accel 0.6/0.3/1.0/1.6. The age-only ratio accel/linear = 2*0.6^age is\n"
        "exact: 0.43 (age 3), 0.26 (4), 0.72 (2), 1.20 (1) — accelerated\n"
        "depreciation charges old machines less and new machines more.\n");
    return 0;
}
