// Figure 9: the user study. 9a — energy by game version; 9b — jobs completed
// by version; 9c — energy stratified by jobs completed.
#include <cstdio>

#include "bench_common.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "study/study.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    (void)ga::bench::parse_bench_args(argc, argv);  // sub-second; --smoke ignored
    ga::bench::banner("Figure 9: user study, energy and jobs by version");

    const auto results = ga::study::run_study();
    std::printf(
        "instances retained: %zu (discarded %zu familiarization plays, %zu\n"
        "rushed instances)\n",
        results.instances.size(), results.discarded_first_plays,
        results.discarded_rushed);

    // ---- 9a + 9b ----
    ga::util::TablePrinter table({"Version", "N", "Mean energy", "Std",
                                  "Mean jobs"});
    std::vector<std::vector<double>> energies(3);
    for (int v = 1; v <= 3; ++v) {
        const auto version = static_cast<ga::study::Version>(v);
        const auto energy = results.energy_by_version(version);
        const auto jobs = results.jobs_by_version(version);
        energies[static_cast<std::size_t>(v - 1)] = energy;
        table.add_row({std::string(ga::study::to_string(version)),
                       std::to_string(energy.size()),
                       ga::util::TablePrinter::num(ga::stats::mean(energy), 0),
                       ga::util::TablePrinter::num(ga::stats::stddev(energy), 0),
                       ga::util::TablePrinter::num(ga::stats::mean(jobs), 1)});
    }
    std::printf("%s", table.render().c_str());

    const auto v1v3 = ga::stats::welch_t_test(energies[0], energies[2]);
    const auto v1v2 = ga::stats::welch_t_test(energies[0], energies[1]);
    std::printf(
        "\nWelch tests on total energy: V1 vs V3 p = %.2g (paper: p = 0.00);\n"
        "V1 vs V2 p = %.2f (paper: no significant difference).\n",
        v1v3.p_value, v1v2.p_value);

    // ---- 9c: energy stratified by jobs completed ----
    ga::util::TablePrinter strat({"Jobs completed", "V1 mean E", "V2 mean E",
                                  "V3 mean E"});
    strat.set_title("Fig 9c: energy by jobs-completed stratum");
    for (int lo = 5; lo <= 17; lo += 4) {
        const int hi = lo + 3;
        std::vector<std::string> row = {std::to_string(lo) + "-" +
                                        std::to_string(hi)};
        for (int v = 1; v <= 3; ++v) {
            std::vector<double> bucket;
            for (const auto& inst : results.instances) {
                if (static_cast<int>(inst.version) == v &&
                    inst.jobs_completed >= lo && inst.jobs_completed <= hi) {
                    bucket.push_back(inst.energy_used);
                }
            }
            row.push_back(bucket.empty() ? std::string("-")
                                         : ga::util::TablePrinter::num(
                                               ga::stats::mean(bucket), 0));
        }
        strat.add_row(std::move(row));
    }
    std::printf("%s", strat.render().c_str());
    std::printf(
        "\nPaper values: mean energy 3262 (V1), 3142 (V2), 1928 (V3) kWh; mean\n"
        "jobs 14.5 / 14.9 / 9.7. Shapes: energy info alone (V2) changes\n"
        "nothing; EBA (V3) cuts energy ~40%%, and for ANY fixed number of jobs\n"
        "completed V3 participants used less energy (they picked more\n"
        "efficient machines).\n");
    return 0;
}
