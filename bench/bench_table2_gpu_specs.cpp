// Table 2: GPU node specifications and the per-#GPU embodied carbon rates
// computed from the SCARIF-like estimates + double-declining-balance
// depreciation.
#include <cstdio>

#include "bench_common.hpp"
#include "carbon/rates.hpp"
#include "machine/catalog.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Table 2: GPU specifications and carbon rates");

    ga::util::TablePrinter table({"GPU", "Year", "GFlop/s", "TDP (W)",
                                  "rate x1", "rate x2", "rate x4", "rate x8"});
    table.set_title("Carbon rate in gCO2e/h for jobs using 1/2/4/8 devices");
    for (const auto& entry : ga::machine::gpu_nodes()) {
        std::vector<std::string> row = {
            entry.node.name, std::to_string(entry.node.gpu.year),
            ga::util::TablePrinter::num(entry.node.gpu.gflops, 0),
            ga::util::TablePrinter::num(entry.node.gpu.tdp_w, 0)};
        for (const int k : {1, 2, 4, 8}) {
            if (k > entry.node.gpu_count) {
                row.push_back("-");
            } else {
                row.push_back(ga::util::TablePrinter::num(
                    ga::carbon::gpu_job_rate_g_per_hour(entry, k), 1));
            }
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values (gCO2e/h): P100 8.5/9.1; V100 19/20/23/28;\n"
        "A100 87/93/106/131. Average grid intensity at all nodes: 53 gCO2e/kWh.\n");
    return 0;
}
