// Table 1: runtime, energy, and normalized EBA/CBA/Peak costs of the
// Cholesky decomposition on the four Chameleon CPU nodes.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/accounting.hpp"
#include "kernels/kernel.hpp"
#include "machine/catalog.hpp"
#include "machine/perf.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Table 1: Cholesky on CPU nodes, five accounting methods");

    const auto kernel = ga::kernels::make_cholesky();
    std::printf("executing Cholesky n=%d on the host...\n", kernel->paper_scale());
    const auto result = kernel->run(kernel->paper_scale());

    const ga::machine::CpuPerfModel model;
    const ga::acct::EnergyBasedAccounting eba;
    const ga::acct::CarbonBasedAccounting cba;
    const ga::acct::PeakAccounting peak;

    struct Row {
        std::string name;
        double rt, energy, eba, cba, peak;
    };
    std::vector<Row> rows;
    for (const auto& entry : ga::machine::chameleon_cpu_nodes()) {
        const auto exec = model.execute(result.profile, entry.node, 1);
        ga::acct::JobUsage u;
        u.duration_s = exec.seconds;
        u.energy_j = exec.joules;
        u.cores = 1;
        rows.push_back({entry.node.name, exec.seconds, exec.joules,
                        eba.charge(u, entry), cba.charge(u, entry),
                        peak.charge(u, entry)});
    }
    const double eba0 = rows[0].eba;   // normalize EBA/CBA by Desktop
    const double cba0 = rows[0].cba;
    const double peak0 = rows[1].peak; // normalize Peak by Cascade Lake

    ga::util::TablePrinter table({"Machine", "Runtime (s)", "Energy (J)",
                                  "EBA", "CBA", "Peak"});
    for (const auto& r : rows) {
        table.add_row({r.name, ga::util::TablePrinter::num(r.rt, 2),
                       ga::util::TablePrinter::num(r.energy, 1),
                       ga::bench::norm(r.eba, eba0), ga::bench::norm(r.cba, cba0),
                       ga::bench::norm(r.peak, peak0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values: runtimes 5.20/4.68/4.60/5.65 s; energies\n"
        "18.3/35.8/19.8/16.8 J; EBA 1.0/1.90/1.10/1.05; CBA 1.0/1.20/1.10/1.15;\n"
        "Peak 1.43/1.0/1.06/1.36. Key shapes: Peak makes the most energy-hungry\n"
        "node (Cascade Lake) the CHEAPEST, while EBA/CBA price Desktop lowest.\n");
    return 0;
}
