// Figure 6: work completed for a fixed CBA allocation across the five
// adaptive policies. The five budgeted runs execute concurrently through
// the sweep engine.
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "bench_sim_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const auto args = ga::bench::parse_bench_args(argc, argv);
    ga::bench::banner("Figure 6: CBA simulation, work at fixed allocation");
    const auto simulator = ga::bench::make_simulator(args);

    // Match the paper: the CBA budget lets Greedy run the same share of work
    // as it did in Fig 5a (75% of its full-run cost there).
    const auto greedy_full =
        ga::bench::run(simulator, ga::sim::Policy::Greedy, ga::acct::Method::Cba);
    const double budget = greedy_full.total_cost * 0.75;
    std::printf("fixed CBA allocation: %.3g gCO2e\n", budget);

    ga::sim::SweepGrid grid;
    grid.policies = ga::sim::multi_machine_policies();
    grid.pricings = {ga::acct::Method::Cba};
    grid.budgets = {budget};
    const auto outcomes = ga::bench::sweep(simulator, grid);

    ga::util::TablePrinter table({"Policy", "Work (M core-h)", "Jobs done",
                                  "FASTER share", "IC share"});
    for (const auto& outcome : outcomes) {
        const auto& r = outcome.result;
        const double total = static_cast<double>(r.jobs_completed);
        table.add_row(
            {std::string(ga::sim::to_string(outcome.spec.options.policy)),
             ga::util::TablePrinter::num(r.work_core_hours / 1e6, 2),
             std::to_string(r.jobs_completed),
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("FASTER") / total * 100.0, 0) + "%",
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("IC") / total * 100.0, 0) + "%"});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper shapes: under CBA the Energy policy loses ground (FASTER's\n"
        "embodied rate is charged against it) while Runtime gains; Greedy\n"
        "adapts, moving ~50%% of jobs to IC and only ~11%% to FASTER.\n");

    // ---- beyond the paper: dual-budget users (core hours AND gCO2e) ----
    // Every user-facing charge is quoted in two currencies at once; a job is
    // admitted only if both the core-hour and the carbon allocation can pay.
    // The same Greedy workload is run by a core-hour-rich/carbon-poor user
    // and a core-hour-poor/carbon-rich one: the binding currency decides how
    // much science the allocation buys.
    ga::bench::banner("Dual-budget: core-hour-rich/carbon-poor vs the reverse");
    const auto core_hours = [](double b) {
        return ga::sim::CurrencyBudget{
            "core-hours", ga::acct::to_spec(ga::acct::Method::Runtime), b};
    };
    const auto carbon = [](double b) {
        return ga::sim::CurrencyBudget{
            "gCO2e", ga::acct::to_spec(ga::acct::Method::Cba), b};
    };
    ga::sim::SimOptions metered;
    metered.currency_budgets = {core_hours(0.0), carbon(0.0)};  // unlimited
    const auto full = simulator.run(metered);
    const double full_ch = full.currency_spent.at("core-hours");
    const double full_g = full.currency_spent.at("gCO2e");
    std::printf("full Greedy run spends %.3g core-hours and %.3g gCO2e\n",
                full_ch, full_g);

    std::vector<ga::sim::ScenarioSpec> dual;
    for (const auto& [label, ch_frac, g_frac] :
         {std::tuple{"core-rich / carbon-poor", 0.9, 0.3},
          std::tuple{"core-poor / carbon-rich", 0.3, 0.9},
          std::tuple{"rich in both", 0.9, 0.9}}) {
        ga::sim::ScenarioSpec spec;
        spec.label = label;
        spec.options.currency_budgets = {core_hours(full_ch * ch_frac),
                                         carbon(full_g * g_frac)};
        dual.push_back(std::move(spec));
    }
    ga::sim::SweepRunner runner(simulator);
    ga::util::TablePrinter dual_table({"User", "Jobs done", "Work (M core-h)",
                                       "core-h spent", "gCO2e spent",
                                       "IC share", "FASTER share"});
    dual_table.set_title("Greedy/EBA routing under dual allocations");
    for (const auto& outcome : runner.run(dual)) {
        const auto& r = outcome.result;
        const double total = static_cast<double>(r.jobs_completed);
        dual_table.add_row(
            {outcome.spec.label, std::to_string(r.jobs_completed),
             ga::util::TablePrinter::num(r.work_core_hours / 1e6, 2),
             ga::util::TablePrinter::num(r.currency_spent.at("core-hours"), 0),
             ga::util::TablePrinter::num(r.currency_spent.at("gCO2e"), 0),
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("IC") / total * 100.0, 0) + "%",
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("FASTER") / total * 100.0, 0) + "%"});
    }
    std::printf("%s", dual_table.render().c_str());
    std::printf(
        "\nReading: the carbon-poor user hits the gCO2e wall first and\n"
        "finishes fewer jobs on the same core-hour wealth; the carbon-rich\n"
        "user is limited by core-hours instead — holding *both* currencies\n"
        "(the paper's titular proposal) is what makes the trade-off visible.\n");
    return 0;
}
