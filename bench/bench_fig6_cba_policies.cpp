// Figure 6: work completed for a fixed CBA allocation across the five
// adaptive policies. The five budgeted runs execute concurrently through
// the sweep engine.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_sim_common.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Figure 6: CBA simulation, work at fixed allocation");
    const auto simulator = ga::bench::make_simulator();

    // Match the paper: the CBA budget lets Greedy run the same share of work
    // as it did in Fig 5a (75% of its full-run cost there).
    const auto greedy_full =
        ga::bench::run(simulator, ga::sim::Policy::Greedy, ga::acct::Method::Cba);
    const double budget = greedy_full.total_cost * 0.75;
    std::printf("fixed CBA allocation: %.3g gCO2e\n", budget);

    ga::sim::SweepGrid grid;
    grid.policies = ga::sim::multi_machine_policies();
    grid.pricings = {ga::acct::Method::Cba};
    grid.budgets = {budget};
    const auto outcomes = ga::bench::sweep(simulator, grid);

    ga::util::TablePrinter table({"Policy", "Work (M core-h)", "Jobs done",
                                  "FASTER share", "IC share"});
    for (const auto& outcome : outcomes) {
        const auto& r = outcome.result;
        const double total = static_cast<double>(r.jobs_completed);
        table.add_row(
            {std::string(ga::sim::to_string(outcome.spec.options.policy)),
             ga::util::TablePrinter::num(r.work_core_hours / 1e6, 2),
             std::to_string(r.jobs_completed),
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("FASTER") / total * 100.0, 0) + "%",
             ga::util::TablePrinter::num(
                 r.jobs_per_machine.at("IC") / total * 100.0, 0) + "%"});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper shapes: under CBA the Energy policy loses ground (FASTER's\n"
        "embodied rate is charged against it) while Runtime gains; Greedy\n"
        "adapts, moving ~50%% of jobs to IC and only ~11%% to FASTER.\n");
    return 0;
}
