// Micro-benchmarks (google-benchmark): throughput of the instrumented
// application kernels at test scale.
#include <benchmark/benchmark.h>

#include "kernels/kernel.hpp"

namespace {

void BM_Kernel(benchmark::State& state, const char* name) {
    const auto kernel = ga::kernels::make_kernel(name);
    const int n = kernel->test_scale();
    double flops = 0.0;
    for (auto _ : state) {
        const auto result = kernel->run(n);
        benchmark::DoNotOptimize(result.checksum);
        flops = result.profile.flops;
    }
    state.counters["counted_gflops"] =
        benchmark::Counter(flops * 1e-9 * static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Kernel, cholesky, "Cholesky")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, matmul, "MatMul")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, pagerank, "Pagerank")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, bfs, "BFS")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, mst, "MST")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, md, "MD")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, dnaviz, "DNA Viz.")->Unit(benchmark::kMillisecond);
