// Table 6: total energy, operational carbon, and attributed carbon for each
// policy over the full workload, under both EBA and CBA pricing for the
// adaptive policies.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_sim_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const auto args = ga::bench::parse_bench_args(argc, argv);
    ga::bench::banner("Table 6: energy and carbon per policy");
    const auto simulator = ga::bench::make_simulator(args);

    ga::util::TablePrinter table({"Policy", "Energy (MWh)", "Operational (kg)",
                                  "Attributed (kg)"});
    auto add = [&table](const std::string& name, const ga::sim::SimResult& r) {
        table.add_row({name, ga::util::TablePrinter::num(r.energy_mwh, 2),
                       ga::util::TablePrinter::num(r.operational_carbon_kg, 0),
                       ga::util::TablePrinter::num(r.attributed_carbon_kg, 0)});
    };

    add("Greedy - EBA", ga::bench::run(simulator, ga::sim::Policy::Greedy,
                                       ga::acct::Method::Eba));
    add("Greedy - CBA", ga::bench::run(simulator, ga::sim::Policy::Greedy,
                                       ga::acct::Method::Cba));
    add("Mixed - EBA", ga::bench::run(simulator, ga::sim::Policy::Mixed,
                                      ga::acct::Method::Eba));
    add("Mixed - CBA", ga::bench::run(simulator, ga::sim::Policy::Mixed,
                                      ga::acct::Method::Cba));
    table.add_separator();
    add("Energy", ga::bench::run(simulator, ga::sim::Policy::Energy,
                                 ga::acct::Method::Eba));
    add("EFT", ga::bench::run(simulator, ga::sim::Policy::Eft,
                              ga::acct::Method::Eba));
    add("Runtime", ga::bench::run(simulator, ga::sim::Policy::Runtime,
                                  ga::acct::Method::Eba));
    // Beyond the paper: Greedy priced by the composite registry accountants
    // (open accounting API) — a carbon tax pushes Greedy off the
    // embodied-heavy machines without abandoning core-hour units entirely.
    table.add_separator();
    for (const auto& spec : ga::acct::beyond_paper_accountants()) {
        ga::sim::SimOptions o;
        o.accountant_spec = spec;
        add("Greedy - " + spec.label(), simulator.run(o));
    }

    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values (MWh / op kg / attributed kg): Greedy-EBA 328/88/322;\n"
        "Greedy-CBA 491/167/228; Mixed-EBA 407/132/319; Mixed-CBA 494/172/275;\n"
        "Energy 321/83/345; EFT 486/169/315; Runtime 501/170/237.\n"
        "Shapes: Energy uses the least energy; Greedy-EBA within a few percent;\n"
        "EFT/Runtime burn ~50%% more; Greedy-CBA attributes the least carbon\n"
        "among adaptive policies by favoring efficient AND older machines.\n");
    return 0;
}
