// Ablations of the design choices DESIGN.md calls out:
//   A1 — EBA's β (potential-use weight): sweeping β shows when the cheapest
//        machine flips from Desktop toward the lowest-energy node.
//   A2 — EBA with/without the PUE refinement (§3.2).
//   A3 — Depreciation lifetime and method: the machine's carbon rate.
//   A4 — Per-job static vs hourly carbon intensity on a solar-heavy grid.
//   A5 — Mixed policy threshold: cost/completion-time tradeoff.
//   A6 — cluster outage resilience (scenario dimension beyond the paper).
//   A7 — arrival-burst compression (scenario dimension beyond the paper).
//   A8 — context-aware routing policies (open policy API beyond the paper):
//        carbon-aware and queue-balancing strategies vs the paper's best,
//        on the Fig-7 regional grids under CBA.
#include <cstdio>

#include "bench_common.hpp"
#include "carbon/grids.hpp"
#include "core/accounting.hpp"
#include "kernels/kernel.hpp"
#include "machine/perf.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

int main() {
    // ---- A1: beta sweep on the Table-1 job ----
    ga::bench::banner("Ablation A1: EBA beta sweep (Cholesky, 1 core)");
    const auto kernel = ga::kernels::make_cholesky();
    const auto result = kernel->run(1024);  // normalized costs are scale-free
    const ga::machine::CpuPerfModel model;
    ga::util::TablePrinter beta_table(
        {"beta", "Desktop", "Cascade Lake", "Ice Lake", "Zen3", "cheapest"});
    for (const double beta : {0.25, 0.5, 0.75, 1.0}) {
        const ga::acct::EnergyBasedAccounting eba(beta);
        std::vector<std::string> row = {ga::util::TablePrinter::num(beta, 2)};
        double best = 1e300;
        double ref = 0.0;
        std::string best_name;
        std::vector<double> costs;
        for (const auto& entry : ga::machine::chameleon_cpu_nodes()) {
            const auto exec = model.execute(result.profile, entry.node, 1);
            ga::acct::JobUsage u{exec.seconds, exec.joules, 1, 0, 0.0};
            const double c = eba.charge(u, entry);
            costs.push_back(c);
            if (ref == 0.0) ref = c;
            if (c < best) {
                best = c;
                best_name = entry.node.name;
            }
        }
        for (const double c : costs) row.push_back(ga::bench::norm(c, ref));
        row.push_back(best_name);
        beta_table.add_row(std::move(row));
    }
    std::printf("%s", beta_table.render().c_str());
    std::printf(
        "As beta shrinks, the potential-use term fades and EBA converges to\n"
        "pure energy pricing — the least-energy node (Zen3) takes over.\n");

    // ---- A2: PUE refinement ----
    ga::bench::banner("Ablation A2: EBA with facility PUE");
    const ga::acct::EnergyBasedAccounting plain(1.0, false);
    const ga::acct::EnergyBasedAccounting with_pue(1.0, true);
    ga::util::TablePrinter pue_table({"Machine", "PUE", "EBA", "EBA+PUE", "ratio"});
    for (const auto& entry : ga::machine::chameleon_cpu_nodes()) {
        const auto exec = model.execute(result.profile, entry.node, 1);
        ga::acct::JobUsage u{exec.seconds, exec.joules, 1, 0, 0.0};
        const double a = plain.charge(u, entry);
        const double b = with_pue.charge(u, entry);
        pue_table.add_row({entry.node.name,
                           ga::util::TablePrinter::num(entry.pue, 2),
                           ga::util::TablePrinter::num(a, 1),
                           ga::util::TablePrinter::num(b, 1),
                           ga::util::TablePrinter::num(b / a, 3)});
    }
    std::printf("%s", pue_table.render().c_str());

    // ---- A3: depreciation lifetime/method on FASTER's carbon rate ----
    ga::bench::banner("Ablation A3: depreciation schedule (FASTER, age 0)");
    const auto& faster = ga::machine::find("FASTER");
    ga::util::TablePrinter dep_table(
        {"Lifetime (y)", "DDB rate (g/h)", "Linear rate (g/h)"});
    for (const double life : {3.0, 5.0, 7.0}) {
        const ga::carbon::DepreciationSchedule s(faster.embodied().total_g(), life);
        dep_table.add_row(
            {ga::util::TablePrinter::num(life, 0),
             ga::util::TablePrinter::num(
                 s.rate_g_per_hour(0.0,
                                   ga::carbon::DepreciationMethod::DoubleDeclining),
                 1),
             ga::util::TablePrinter::num(
                 s.rate_g_per_hour(0.0, ga::carbon::DepreciationMethod::Linear),
                 1)});
    }
    std::printf("%s", dep_table.render().c_str());

    // ---- A4: static vs hourly intensity ----
    ga::bench::banner("Ablation A4: static vs hourly intensity (AU-SA, 1 kWh job)");
    const auto trace = ga::carbon::synthesize(ga::carbon::region("AU-SA"), 7, 5);
    std::map<std::string, ga::carbon::IntensityTrace> traces;
    traces.emplace("IC", trace);
    const ga::acct::CarbonBasedAccounting hourly(std::move(traces));
    const ga::acct::CarbonBasedAccounting yearly;  // falls back to Table-5 average
    const auto& ic = ga::machine::find("IC");
    ga::util::TablePrinter i_table({"Submit hour", "hourly op (g)", "static op (g)"});
    for (const int h : {2, 8, 14, 20}) {  // UTC; AU-SA solar noon ~02:30 UTC
        ga::acct::JobUsage u{3600.0, 3.6e6, 16, 0, 2 * 86400.0 + h * 3600.0};
        i_table.add_row({std::to_string(h),
                         ga::util::TablePrinter::num(hourly.operational_g(u, ic), 1),
                         ga::util::TablePrinter::num(yearly.operational_g(u, ic), 1)});
    }
    std::printf("%s", i_table.render().c_str());
    std::printf(
        "Static pricing cannot reward solar-aligned submission; hourly CBA\n"
        "makes the same job several times cheaper at solar noon.\n");

    // ---- A5: Mixed threshold sweep ----
    ga::bench::banner("Ablation A5: Mixed policy threshold (small workload)");
    ga::workload::TraceOptions options;
    options.base_jobs = 3000;
    options.users = 60;
    options.span_days = 5.0;
    options.seed = 77;
    const ga::sim::BatchSimulator simulator(ga::workload::build_workload(options));
    ga::sim::SweepRunner runner(simulator);
    ga::sim::SweepGrid mixed_grid;
    mixed_grid.policies = {ga::sim::Policy::Mixed};
    mixed_grid.mixed_thresholds = {1.25, 1.5, 2.0, 4.0, 100.0};
    ga::util::TablePrinter mixed_table(
        {"Threshold", "Cost", "Makespan (d)", "Energy (MWh)"});
    for (const auto& outcome : runner.run(mixed_grid)) {
        const auto& r = outcome.result;
        mixed_table.add_row(
            {ga::util::TablePrinter::num(outcome.spec.options.mixed_threshold, 2),
             ga::util::TablePrinter::num(r.total_cost / 1e6, 1),
             ga::util::TablePrinter::num(r.makespan_s / 86400.0, 1),
             ga::util::TablePrinter::num(r.energy_mwh, 3)});
    }
    std::printf("%s", mixed_table.render().c_str());
    std::printf(
        "Low thresholds chase completion time (toward EFT behavior, higher\n"
        "cost); high thresholds almost never switch (toward Greedy).\n");

    // ---- A6: cluster-outage resilience (new scenario dimension) ----
    // FASTER (cluster 0, 32 nodes) loses half, then all, of its nodes on
    // day 2. Queued jobs that no longer fit are refunded and skipped; the
    // policies reroute the rest of the trace.
    ga::bench::banner("Ablation A6: FASTER outage on day 2 (new dimension)");
    ga::sim::SweepGrid outage_grid;
    outage_grid.policies = {ga::sim::Policy::Greedy, ga::sim::Policy::Eft,
                            ga::sim::Policy::FixedFaster};
    outage_grid.outages = {
        std::nullopt,
        ga::sim::ClusterOutage{0, 2 * 86400.0, 16},
        ga::sim::ClusterOutage{0, 2 * 86400.0, 32},
    };
    ga::util::TablePrinter outage_table(
        {"Scenario", "Jobs done", "Skipped", "FASTER jobs", "Makespan (d)"});
    for (const auto& outcome : runner.run(outage_grid)) {
        const auto& r = outcome.result;
        outage_table.add_row(
            {outcome.spec.label, std::to_string(r.jobs_completed),
             std::to_string(r.jobs_skipped),
             std::to_string(r.jobs_per_machine.at("FASTER")),
             ga::util::TablePrinter::num(r.makespan_s / 86400.0, 2)});
    }
    std::printf("%s", outage_table.render().c_str());
    std::printf(
        "Adaptive policies absorb the outage by rerouting; the fixed policy\n"
        "strands its users once the pinned machine shrinks below job sizes.\n");

    // ---- A7: arrival-burst scaling (new scenario dimension) ----
    // The same trace compressed into ever-burstier submission windows.
    ga::bench::banner("Ablation A7: arrival-burst compression (new dimension)");
    ga::sim::SweepGrid burst_grid;
    burst_grid.policies = {ga::sim::Policy::Greedy};
    burst_grid.arrival_compressions = {1.0, 2.0, 4.0, 8.0};
    ga::util::TablePrinter burst_table(
        {"Compression", "Jobs done", "Makespan (d)", "Mean finish (h)"});
    for (const auto& outcome : runner.run(burst_grid)) {
        const auto& r = outcome.result;
        double mean_finish = 0.0;
        for (const double t : r.finish_times_s) mean_finish += t;
        mean_finish /= static_cast<double>(r.finish_times_s.size());
        burst_table.add_row(
            {ga::util::TablePrinter::num(
                 outcome.spec.options.arrival_compression, 1),
             std::to_string(r.jobs_completed),
             ga::util::TablePrinter::num(r.makespan_s / 86400.0, 2),
             ga::util::TablePrinter::num(mean_finish / 3600.0, 1)});
    }
    std::printf("%s", burst_table.render().c_str());
    std::printf(
        "Compressing arrivals stresses the queues: completed work holds but\n"
        "contention grows as the submission window shrinks.\n");

    // ---- A8: context-aware routing (open policy API, beyond the paper) ----
    // Registry policies swept by name next to the paper's enum policies:
    // CarbonAware routes on live (or one-hour-ahead) grid intensity,
    // LeastLoaded balances queue depths. Regional grids, CBA pricing.
    ga::bench::banner("Ablation A8: carbon-aware routing on regional grids");
    ga::sim::SweepGrid carbon_grid;
    carbon_grid.policies = {ga::sim::Policy::Greedy, ga::sim::Policy::Energy};
    carbon_grid.policy_specs = {
        ga::sim::PolicySpec{"CarbonAware", {}},
        ga::sim::PolicySpec{"CarbonAware", {{"forecast", 1.0}}},
        ga::sim::PolicySpec{"LeastLoaded", {}},
    };
    carbon_grid.pricings = {ga::acct::Method::Cba};
    carbon_grid.regional_grids = {true};
    ga::util::TablePrinter carbon_table({"Scenario", "Op carbon (kg)",
                                         "Total carbon (kg)", "Cost (kg eq)",
                                         "Makespan (d)"});
    for (const auto& outcome : runner.run(carbon_grid)) {
        const auto& r = outcome.result;
        carbon_table.add_row(
            {outcome.spec.label,
             ga::util::TablePrinter::num(r.operational_carbon_kg, 1),
             ga::util::TablePrinter::num(r.attributed_carbon_kg, 1),
             ga::util::TablePrinter::num(r.total_cost / 1000.0, 1),
             ga::util::TablePrinter::num(r.makespan_s / 86400.0, 2)});
    }
    std::printf("%s", carbon_table.render().c_str());
    std::printf(
        "CBA-Greedy already internalizes carbon through prices; CarbonAware\n"
        "chases the cleanest grid directly (lowest operational carbon) at\n"
        "some cost in makespan, and LeastLoaded trades carbon for speed.\n");
    return 0;
}
