// Figure 4: runtime and energy of the seven applications on the four
// Chameleon CPU nodes. The kernels really execute once each (counting their
// work), then the calibrated machine model maps the measured profiles onto
// every node.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/kernel.hpp"
#include "machine/catalog.hpp"
#include "machine/perf.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const auto args = ga::bench::parse_bench_args(argc, argv);
    ga::bench::banner("Figure 4: seven applications on four CPU nodes");

    const auto machines = ga::machine::chameleon_cpu_nodes();
    const ga::machine::CpuPerfModel model;

    ga::util::TablePrinter runtime_table(
        {"App", "Desktop (s)", "Cascade Lake (s)", "Ice Lake (s)", "Zen3 (s)",
         "host exec (s)"});
    runtime_table.set_title("Runtime per node (model) + real host execution time");
    ga::util::TablePrinter energy_table(
        {"App", "Desktop (J)", "Cascade Lake (J)", "Ice Lake (J)", "Zen3 (J)"});
    energy_table.set_title("Task energy per node (model)");

    for (const auto& kernel : ga::kernels::make_suite()) {
        // Smoke mode quarters the problem size: the kernels still really
        // execute and self-verify, just small enough for a CI tick.
        const int n = args.smoke ? std::max(1, kernel->paper_scale() / 4)
                            : kernel->paper_scale();
        std::printf("running %s (n=%d)...\n",
                    std::string(kernel->name()).c_str(), n);
        const auto result = kernel->run(n);

        std::vector<std::string> rt_row = {std::string(kernel->name())};
        std::vector<std::string> en_row = {std::string(kernel->name())};
        for (const auto& entry : machines) {
            const auto exec = model.execute(result.profile, entry.node, 1);
            rt_row.push_back(ga::util::TablePrinter::num(exec.seconds, 2));
            en_row.push_back(ga::util::TablePrinter::num(exec.joules, 1));
        }
        rt_row.push_back(ga::util::TablePrinter::num(result.wall_seconds, 2));
        runtime_table.add_row(std::move(rt_row));
        energy_table.add_row(std::move(en_row));
    }

    std::printf("%s\n%s", runtime_table.render().c_str(),
                energy_table.render().c_str());
    std::printf(
        "\nPaper reading: different apps favor different nodes — compute-bound\n"
        "codes run fastest on the high-clock Cascade Lake / Ice Lake parts but\n"
        "burn the most energy there; memory-bound graph codes favor the\n"
        "high-bandwidth nodes; Desktop and Zen3 are the frugal options.\n");
    return 0;
}
