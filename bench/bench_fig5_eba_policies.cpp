// Figure 5: simulating EBA across the eight machine-selection policies.
//   5a — work completed (machine-averaged core-hours) under a fixed
//        EBA allocation;
//   5b — jobs finished over time (unbudgeted runs);
//   5c — distribution of jobs over machines per policy.
//
// The 16 scenario runs (8 policies × {budgeted, unbudgeted}) execute
// concurrently through the sweep engine.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_sim_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const auto args = ga::bench::parse_bench_args(argc, argv);
    ga::bench::banner("Figure 5: EBA simulation (8 policies)");
    const auto simulator = ga::bench::make_simulator(args);

    // The fixed allocation: 75% of what Greedy needs for the full workload.
    const auto greedy_full =
        ga::bench::run(simulator, ga::sim::Policy::Greedy, ga::acct::Method::Eba);
    const double budget = greedy_full.total_cost * 0.75;
    std::printf("fixed EBA allocation: %.3g (75%% of Greedy's full-run cost)\n",
                budget);

    // One grid, all policies, both budget levels; rows are classified by
    // each outcome's own spec, independent of expansion order. Pricing runs
    // through the open accounting API — an explicit EBA registry spec,
    // bit-identical to the legacy enum axis.
    ga::sim::SweepGrid grid;
    grid.policies = ga::sim::all_policies();
    grid.accountant_specs = {ga::acct::to_spec(ga::acct::Method::Eba)};
    grid.budgets = {budget, 0.0};
    const auto outcomes = ga::bench::sweep(simulator, grid);

    // ---- 5a: work at fixed allocation + 5c: machine distribution ----
    ga::util::TablePrinter work_table(
        {"Policy", "Work (M core-h)", "Jobs done", "Skipped"});
    work_table.set_title("Fig 5a: work completed with a fixed EBA allocation");
    ga::util::TablePrinter dist_table(
        {"Policy", "FASTER", "Desktop", "IC", "Theta"});
    dist_table.set_title("Fig 5c: distribution of jobs over machines (unbudgeted)");

    std::vector<std::pair<ga::sim::Policy, ga::sim::SimResult>> unbudgeted;
    for (const auto& outcome : outcomes) {
        const auto policy = outcome.spec.options.policy;
        const auto& r = outcome.result;
        if (outcome.spec.options.budget > 0.0) {
            work_table.add_row(
                {std::string(ga::sim::to_string(policy)),
                 ga::util::TablePrinter::num(r.work_core_hours / 1e6, 2),
                 std::to_string(r.jobs_completed),
                 std::to_string(r.jobs_skipped)});
        } else {
            dist_table.add_row(
                {std::string(ga::sim::to_string(policy)),
                 std::to_string(r.jobs_per_machine.at("FASTER")),
                 std::to_string(r.jobs_per_machine.at("Desktop")),
                 std::to_string(r.jobs_per_machine.at("IC")),
                 std::to_string(r.jobs_per_machine.at("Theta"))});
            unbudgeted.emplace_back(policy, r);
        }
    }
    std::printf("%s", work_table.render().c_str());

    // ---- 5b: jobs finished over time ----
    ga::util::TablePrinter time_table({"Policy", "t=25%", "t=50%", "t=75%",
                                       "t=100%", "makespan (d)"});
    time_table.set_title(
        "Fig 5b: jobs finished (thousands) at fractions of the slowest makespan");
    double max_makespan = 0.0;
    for (const auto& [p, r] : unbudgeted) {
        max_makespan = std::max(max_makespan, r.makespan_s);
    }
    for (const auto& [p, r] : unbudgeted) {
        std::vector<std::string> row = {std::string(ga::sim::to_string(p))};
        for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
            const double t = frac * max_makespan;
            const auto done = std::lower_bound(r.finish_times_s.begin(),
                                               r.finish_times_s.end(), t) -
                              r.finish_times_s.begin();
            row.push_back(ga::util::TablePrinter::num(
                static_cast<double>(done) / 1000.0, 1));
        }
        row.push_back(ga::util::TablePrinter::num(r.makespan_s / 86400.0, 1));
        time_table.add_row(std::move(row));
    }
    std::printf("%s%s", time_table.render().c_str(), dist_table.render().c_str());

    std::printf(
        "\nPaper shapes: Greedy completes the most work (28%% more than EFT);\n"
        "Energy reaches ~99%% of Greedy; single-machine policies and EFT/\n"
        "Runtime trail badly; Greedy/Energy route nothing to Theta; Mixed\n"
        "spreads over all four machines to cut completion time.\n");
    return 0;
}
