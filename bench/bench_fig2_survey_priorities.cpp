// Figure 2: importance of factors when choosing where to run a job.
#include <cstdio>

#include "bench_common.hpp"
#include "study/survey.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    (void)ga::bench::parse_bench_args(argc, argv);  // sub-second; --smoke ignored
    ga::bench::banner("Figure 2: machine-selection priorities");

    ga::util::TablePrinter table(
        {"Factor", "1 (Not Important)", "2", "3 (Very Important)", "VeryImp %"});
    for (const auto& row : ga::study::fig2_factor_importance()) {
        const double pct =
            100.0 * row.very_important / static_cast<double>(row.total());
        table.add_row({row.factor, std::to_string(row.not_important),
                       std::to_string(row.neutral),
                       std::to_string(row.very_important),
                       ga::util::TablePrinter::num(pct, 0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper anchors: Performance very-important = 83 (46%%); Energy\n"
        "very-important = 25 (12%%) — energy efficiency is among the least\n"
        "important selection factors.\n");
    return 0;
}
