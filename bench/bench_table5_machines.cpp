// Table 5: the simulation machine population with computed embodied carbon
// and DDB carbon rates.
#include <cstdio>

#include "bench_common.hpp"
#include "carbon/rates.hpp"
#include "machine/catalog.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Table 5: simulation machines");

    ga::util::TablePrinter table({"Machine", "Deployed", "CPU", "Cores",
                                  "TDP (W)", "Idle (W)", "Embodied (kg)",
                                  "Rate (g/h)", "Avg I (g/kWh)"});
    for (const auto& entry : ga::machine::simulation_machines()) {
        table.add_row({entry.node.name, std::to_string(entry.node.year_deployed),
                       entry.node.cpu.model,
                       std::to_string(entry.node.total_cores()),
                       ga::util::TablePrinter::num(entry.node.cpu.tdp_w, 0),
                       ga::util::TablePrinter::num(entry.node.idle_w(), 1),
                       ga::util::TablePrinter::num(entry.embodied().total_kg(), 0),
                       ga::util::TablePrinter::num(
                           ga::carbon::node_rate_g_per_hour(entry), 1),
                       ga::util::TablePrinter::num(entry.avg_carbon_intensity, 0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values — TDP: 205/65/205/215 W; idle: 205/6.51/136/110 W;\n"
        "carbon rate: 105.2/12.2/16.7/2.0 g/h; intensity: 389/454/454/502.\n"
        "(Desktop's rate differs because Table 4 pins its deployment year; see\n"
        "EXPERIMENTS.md.)\n");
    return 0;
}
