// Figure 1: "Are you aware of how the HPC resources you use perform on the
// following sustainability metrics?" — responses per metric.
#include <cstdio>

#include "bench_common.hpp"
#include "study/survey.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    (void)ga::bench::parse_bench_args(argc, argv);  // sub-second; --smoke ignored
    ga::bench::banner("Figure 1: awareness of sustainability metrics");

    ga::util::TablePrinter table({"Metric", "Yes", "No", "Not Applicable", "Total"});
    table.set_title(
        "Responses to: are you aware of how your resources perform on...");
    for (const auto& row : ga::study::fig1_metric_awareness()) {
        table.add_row({row.metric, std::to_string(row.yes), std::to_string(row.no),
                       std::to_string(row.not_applicable),
                       std::to_string(row.total())});
    }
    std::printf("%s", table.render().c_str());

    const auto& a = ga::study::awareness();
    std::printf(
        "\nKey statistics (paper section 2.2):\n"
        "  familiar with Green500:            %d (paper: 94, 51%%)\n"
        "  know own machine's Green500 rank:  %d (paper: 36, 20%% of all)\n"
        "  familiar with carbon intensity:    %d (paper: 55, 30%%)\n",
        a.know_green500, a.know_own_green500_rank, a.know_carbon_intensity);
    return 0;
}
