// Table 3: tiled Cholesky (42 GB single precision) on 1–8 GPUs of three
// generations, with normalized EBA / CBA / Peak-performance costs.
#include <cstdio>

#include "bench_common.hpp"
#include "core/accounting.hpp"
#include "machine/catalog.hpp"
#include "taskrt/experiment.hpp"
#include "util/table.hpp"

int main() {
    ga::bench::banner("Table 3: tiled Cholesky across GPU generations");

    const ga::acct::EnergyBasedAccounting eba;
    const ga::acct::CarbonBasedAccounting cba;
    const ga::acct::PeakAccounting perf;

    struct Row {
        ga::taskrt::GpuRun run;
        double eba, cba, perf;
    };
    std::vector<Row> rows;
    double eba_ref = 0.0, cba_ref = 0.0, perf_ref = 0.0;
    for (const auto& run : ga::taskrt::table3_sweep()) {
        const auto& entry = ga::machine::find(run.gpu);
        ga::acct::JobUsage u;
        u.duration_s = run.runtime_s;
        u.energy_j = run.energy_j;
        u.cores = 0;
        u.gpus = run.n_gpus;
        Row row{run, eba.charge(u, entry), cba.charge(u, entry),
                perf.charge(u, entry)};
        if (run.gpu == "P100" && run.n_gpus == 2) {  // paper normalizes EBA/CBA
            eba_ref = row.eba;
            cba_ref = row.cba;
        }
        if (run.gpu == "P100" && run.n_gpus == 1) {  // and Perf by P100 x1
            perf_ref = row.perf;
        }
        rows.push_back(row);
    }

    ga::util::TablePrinter table(
        {"GPU", "#", "Runtime (s)", "Energy (kJ)", "EBA", "CBA", "Perf."});
    std::string last;
    for (const auto& r : rows) {
        if (!last.empty() && r.run.gpu != last) table.add_separator();
        last = r.run.gpu;
        table.add_row({r.run.gpu, std::to_string(r.run.n_gpus),
                       ga::util::TablePrinter::num(r.run.runtime_s, 0),
                       ga::util::TablePrinter::num(r.run.energy_j / 1000.0, 0),
                       ga::bench::norm(r.eba, eba_ref),
                       ga::bench::norm(r.cba, cba_ref),
                       ga::bench::norm(r.perf, perf_ref)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nPaper values — runtimes: P100 2321/1396; V100 1494/1190/917/926;\n"
        "A100 1405/926/841/838 s. Energies: 889/635; 1316/1194/916/944;\n"
        "2100/1427/1320/1325 kJ. Shapes to check: energy falls 1->2 GPUs then\n"
        "flattens 4->8; A100 is slightly faster but far hungrier than V100;\n"
        "EBA and CBA both make TWO P100s the cheapest configuration while\n"
        "Peak-performance pricing favors one P100.\n");
    return 0;
}
