// Shared setup for the §5 simulation benches (Figs 5–7, Table 6).
#pragma once

#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace ga::bench {

/// Builds the paper-scale workload (142,380 jobs) and the simulator.
/// Pass `scale < 1.0` to shrink for quick runs.
inline ga::sim::BatchSimulator make_simulator(double scale = 1.0) {
    ga::workload::TraceOptions options;  // paper defaults: 71,190 x 2 jobs
    options.base_jobs =
        static_cast<std::size_t>(static_cast<double>(options.base_jobs) * scale);
    std::printf("building workload: %zu jobs over %zu users...\n",
                options.total_jobs(), options.users);
    return ga::sim::BatchSimulator(ga::workload::build_workload(options));
}

/// Runs one policy/pricing combination.
inline ga::sim::SimResult run(const ga::sim::BatchSimulator& simulator,
                              ga::sim::Policy policy, ga::acct::Method pricing,
                              double budget = 0.0, bool regional = false) {
    ga::sim::SimOptions o;
    o.policy = policy;
    o.pricing = pricing;
    o.budget = budget;
    o.regional_grids = regional;
    return simulator.run(o);
}

}  // namespace ga::bench
