// Shared setup for the §5 simulation benches (Figs 5–7, Table 6). All
// drivers run their scenario grids through the sweep engine so every
// policy/pricing/budget point executes concurrently over one shared
// immutable simulator.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workload/workload.hpp"

namespace ga::bench {

/// Builds the paper-scale workload (142,380 jobs) and the simulator.
/// Pass `scale < 1.0` to shrink for quick runs.
inline ga::sim::BatchSimulator make_simulator(double scale = 1.0) {
    ga::workload::TraceOptions options;  // paper defaults: 71,190 x 2 jobs
    options.base_jobs =
        static_cast<std::size_t>(static_cast<double>(options.base_jobs) * scale);
    std::printf("building workload: %zu jobs over %zu users...\n",
                options.total_jobs(), options.users);
    return ga::sim::BatchSimulator(ga::workload::build_workload(options));
}

/// Builds the simulator at the scale the parsed bench args call for
/// (paper scale, or ~1% under `--smoke`).
inline ga::sim::BatchSimulator make_simulator(const BenchArgs& args) {
    return make_simulator(args.workload_scale());
}

/// Expands a scenario grid and executes it concurrently. Outcome order is
/// the grid's deterministic expansion order (policies vary slowest). This
/// one-shot helper spawns a fresh pool per call; drivers issuing several
/// grids should hold their own `SweepRunner` (see bench_ablations).
inline std::vector<ga::sim::SweepOutcome> sweep(
    const ga::sim::BatchSimulator& simulator, const ga::sim::SweepGrid& grid) {
    ga::sim::SweepRunner runner(simulator);
    std::printf("sweeping %zu scenarios over %zu threads...\n", grid.size(),
                runner.threads());
    return runner.run(grid);
}

/// Runs one policy/pricing combination (single-scenario convenience).
inline ga::sim::SimResult run(const ga::sim::BatchSimulator& simulator,
                              ga::sim::Policy policy, ga::acct::Method pricing,
                              double budget = 0.0, bool regional = false) {
    ga::sim::SimOptions o;
    o.policy = policy;
    o.pricing = pricing;
    o.budget = budget;
    o.regional_grids = regional;
    return simulator.run(o);
}

}  // namespace ga::bench
