// Micro-benchmarks (google-benchmark): the accounting hot path — cost
// evaluation per method, as called once per job per candidate machine by the
// simulator's policy loop.
#include <benchmark/benchmark.h>

#include "core/accounting.hpp"
#include "machine/catalog.hpp"

namespace {

void BM_Charge(benchmark::State& state, ga::acct::Method method) {
    const auto accountant = ga::acct::make_accountant(method);
    const auto& machine =
        ga::machine::find(ga::machine::CatalogId::InstitutionalCluster);
    ga::acct::JobUsage usage;
    usage.duration_s = 1234.0;
    usage.energy_j = 5.6e6;
    usage.cores = 16;
    usage.priced_at_s = 7200.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(accountant->charge(usage, machine));
    }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Charge, runtime, ga::acct::Method::Runtime);
BENCHMARK_CAPTURE(BM_Charge, energy, ga::acct::Method::Energy);
BENCHMARK_CAPTURE(BM_Charge, peak, ga::acct::Method::Peak);
BENCHMARK_CAPTURE(BM_Charge, eba, ga::acct::Method::Eba);
BENCHMARK_CAPTURE(BM_Charge, cba, ga::acct::Method::Cba);
