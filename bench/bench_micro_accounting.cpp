// Micro-benchmarks (google-benchmark): the accounting hot paths — cost
// evaluation per method (called once per job per candidate machine by the
// simulator's policy loop), registry construction from an AccountantSpec,
// and multi-currency ledger charges.
#include <benchmark/benchmark.h>

#include "core/accounting.hpp"
#include "core/allocation.hpp"
#include "machine/catalog.hpp"

namespace {

ga::acct::JobUsage bench_usage() {
    ga::acct::JobUsage usage;
    usage.duration_s = 1234.0;
    usage.energy_j = 5.6e6;
    usage.cores = 16;
    usage.priced_at_s = 7200.0;
    return usage;
}

void BM_Charge(benchmark::State& state, ga::acct::Method method) {
    const auto accountant = ga::acct::make_accountant(method);
    const auto& machine =
        ga::machine::find(ga::machine::CatalogId::InstitutionalCluster);
    const auto usage = bench_usage();
    for (auto _ : state) {
        benchmark::DoNotOptimize(accountant->charge(usage, machine));
    }
}

// Registry-built composite accountants on the same hot path.
void BM_ChargeSpec(benchmark::State& state, const char* name) {
    const auto accountant = ga::acct::AccountantRegistry::global().make(
        ga::acct::AccountantSpec{name, {}});
    const auto& machine =
        ga::machine::find(ga::machine::CatalogId::InstitutionalCluster);
    const auto usage = bench_usage();
    for (auto _ : state) {
        benchmark::DoNotOptimize(accountant->charge(usage, machine));
    }
}

// Spec -> accountant construction (the once-per-run registry cost).
void BM_RegistryMake(benchmark::State& state) {
    const ga::acct::AccountantSpec spec{"CarbonTax", {{"rate", 0.02}}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ga::acct::AccountantRegistry::global().make(spec));
    }
}

// Multi-currency charge: dual-budget admission + debit + two transactions,
// under the ledger's internal lock (the green-ACCESS settlement path).
void BM_LedgerDualCharge(benchmark::State& state) {
    ga::acct::Ledger ledger;
    ledger.define_currency("core-hours",
                           ga::acct::to_spec(ga::acct::Method::Runtime));
    ledger.define_currency("gCO2e", ga::acct::to_spec(ga::acct::Method::Cba));
    ledger.create_account("user", {{"core-hours", 1e18}, {"gCO2e", 1e18}});
    const auto& machine =
        ga::machine::find(ga::machine::CatalogId::InstitutionalCluster);
    const auto usage = bench_usage();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ledger.charge("user", usage, machine));
    }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Charge, runtime, ga::acct::Method::Runtime);
BENCHMARK_CAPTURE(BM_Charge, energy, ga::acct::Method::Energy);
BENCHMARK_CAPTURE(BM_Charge, peak, ga::acct::Method::Peak);
BENCHMARK_CAPTURE(BM_Charge, eba, ga::acct::Method::Eba);
BENCHMARK_CAPTURE(BM_Charge, cba, ga::acct::Method::Cba);
BENCHMARK_CAPTURE(BM_ChargeSpec, blended, "Blended");
BENCHMARK_CAPTURE(BM_ChargeSpec, carbon_tax, "CarbonTax");
BENCHMARK(BM_RegistryMake);
// Fixed iteration count: every charge appends two history rows, so an
// auto-scaled run would grow the audit trail (and its memory) unboundedly.
BENCHMARK(BM_LedgerDualCharge)->Iterations(100000);
