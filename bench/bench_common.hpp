// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "util/table.hpp"

namespace ga::bench {

/// Prints a section banner so concatenated bench output stays navigable.
inline void banner(const std::string& title) {
    std::printf("\n================ %s ================\n", title.c_str());
}

/// The CLI arguments shared by every bench driver, parsed once by
/// `parse_bench_args` instead of per-driver flag scans.
struct BenchArgs {
    /// `--smoke`: run a tiny scenario so CI can exercise every bench driver
    /// end-to-end (bit-rot check) without paying for the paper-scale
    /// workloads. Sub-second drivers accept and ignore it so CI can invoke
    /// every driver uniformly.
    bool smoke = false;

    /// Workload scale for the §5 simulation drivers: full paper scale, or
    /// ~1% under `--smoke` so CI finishes in seconds.
    [[nodiscard]] double workload_scale() const { return smoke ? 0.01 : 1.0; }
};

/// Parses the shared bench flags; unrecognized arguments are ignored (the
/// figure/table drivers take nothing else).
inline BenchArgs parse_bench_args(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") args.smoke = true;
    }
    return args;
}

/// Formats a normalized-cost cell the way the paper's tables do.
inline std::string norm(double value, double reference) {
    return ga::util::TablePrinter::num(value / reference, 2);
}

}  // namespace ga::bench
