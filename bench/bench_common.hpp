// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "util/table.hpp"

namespace ga::bench {

/// Prints a section banner so concatenated bench output stays navigable.
inline void banner(const std::string& title) {
    std::printf("\n================ %s ================\n", title.c_str());
}

/// True when the driver was invoked with `--smoke`: run a tiny scenario so
/// CI can exercise every bench driver end-to-end (bit-rot check) without
/// paying for the paper-scale workloads.
inline bool smoke_mode(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke") return true;
    }
    return false;
}

/// Formats a normalized-cost cell the way the paper's tables do.
inline std::string norm(double value, double reference) {
    return ga::util::TablePrinter::num(value / reference, 2);
}

}  // namespace ga::bench
