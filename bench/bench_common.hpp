// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "util/table.hpp"

namespace ga::bench {

/// Prints a section banner so concatenated bench output stays navigable.
inline void banner(const std::string& title) {
    std::printf("\n================ %s ================\n", title.c_str());
}

/// Formats a normalized-cost cell the way the paper's tables do.
inline std::string norm(double value, double reference) {
    return ga::util::TablePrinter::num(value / reference, 2);
}

}  // namespace ga::bench
